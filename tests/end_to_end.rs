//! End-to-end integration: the full Graph500 pipeline — generate →
//! partition → assemble → solve → gather → validate → TEPS — across
//! kernels, partitions, machine shapes and optimization configurations.

use graph500::gen::{KroneckerGenerator, KroneckerParams};
use graph500::simnet::{LogGP, Machine, MachineConfig, Topology};
use graph500::sssp::{Direction, Grid2DSssp, OptConfig};
use graph500::validate::{validate_sssp, SsspResult};
use graph500::{run_bfs_benchmark, run_sssp_benchmark, BenchmarkConfig, PartitionStrategy};

#[test]
fn official_shape_run_validates() {
    // The real configuration in miniature: 64 roots, full stack.
    let mut cfg = BenchmarkConfig::graph500(9, 4);
    cfg.num_roots = 64;
    let rep = run_sssp_benchmark(&cfg);
    assert_eq!(rep.runs.len(), 64);
    assert!(rep.all_validated());
    assert!(rep.teps.harmonic_mean > 0.0);
    assert!(rep.teps.min <= rep.teps.harmonic_mean);
    assert!(rep.teps.harmonic_mean <= rep.teps.max);
}

#[test]
fn every_topology_validates() {
    for topo in [
        Topology::Crossbar,
        Topology::FatTree { radix: 4 },
        Topology::Torus2D { w: 2, h: 2 },
        Topology::Dragonfly { group: 2 },
    ] {
        let mut cfg = BenchmarkConfig::quick(8, 4);
        cfg.machine = cfg.machine.topology(topo);
        let rep = run_sssp_benchmark(&cfg);
        assert!(rep.all_validated(), "{topo:?}");
    }
}

#[test]
fn topology_changes_time_but_not_results() {
    let mk = |topo| {
        let mut cfg = BenchmarkConfig::quick(9, 8);
        cfg.machine = cfg.machine.topology(topo);
        run_sssp_benchmark(&cfg)
    };
    let xbar = mk(Topology::Crossbar);
    let torus = mk(Topology::Torus2D { w: 4, h: 2 });
    // identical traversal work...
    for (a, b) in xbar.runs.iter().zip(&torus.runs) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.traversed_edges, b.traversed_edges);
    }
    // ...but the multi-hop torus is slower in simulated time
    assert!(torus.teps.harmonic_mean < xbar.teps.harmonic_mean);
}

#[test]
fn slower_network_is_slower() {
    let mk = |loggp| {
        let mut cfg = BenchmarkConfig::quick(9, 4);
        cfg.machine = cfg.machine.loggp(loggp);
        cfg.validate = false;
        run_sssp_benchmark(&cfg).teps.harmonic_mean
    };
    let fast = mk(LogGP::default());
    let slow = mk(LogGP {
        latency: 50e-6,
        overhead: 10e-6,
        per_byte: 1.0 / 1e9,
    });
    assert!(slow < fast, "slow {slow} vs fast {fast}");
}

#[test]
fn bfs_and_sssp_agree_on_reachability() {
    let cfg = BenchmarkConfig::quick(9, 4);
    let bfs = run_bfs_benchmark(&cfg);
    let sssp = run_sssp_benchmark(&cfg);
    assert!(bfs.all_validated() && sssp.all_validated());
    // same roots (same seed) → the traversed-edge counts must coincide
    for (b, s) in bfs.runs.iter().zip(&sssp.runs) {
        assert_eq!(b.root, s.root);
        assert_eq!(b.traversed_edges, s.traversed_edges);
    }
}

#[test]
fn sssp_deterministic_across_runs() {
    let cfg = BenchmarkConfig::quick(8, 3);
    let a = run_sssp_benchmark(&cfg);
    let b = run_sssp_benchmark(&cfg);
    assert_eq!(a.teps.harmonic_mean, b.teps.harmonic_mean);
    assert_eq!(a.net.total_bytes(), b.net.total_bytes());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.traversed_edges, y.traversed_edges);
        assert_eq!(x.sim_time_s, y.sim_time_s);
    }
}

#[test]
fn optimizations_do_not_change_traversal() {
    let mk = |opts: OptConfig, part| {
        let mut cfg = BenchmarkConfig::quick(9, 4);
        cfg.opts = opts;
        cfg.partition = part;
        run_sssp_benchmark(&cfg)
    };
    let degree_aware = PartitionStrategy::DegreeAware { hub_factor: 8.0 };
    let base = mk(OptConfig::all_on(), degree_aware);
    for (name, rep) in [
        (
            "all_off",
            mk(OptConfig::all_off(), PartitionStrategy::Block),
        ),
        (
            "pull",
            mk(
                OptConfig::all_on().with_direction(Direction::Pull),
                degree_aware,
            ),
        ),
        ("cyclic", mk(OptConfig::all_on(), PartitionStrategy::Cyclic)),
    ] {
        assert!(rep.all_validated(), "{name}");
        for (a, b) in base.runs.iter().zip(&rep.runs) {
            assert_eq!(
                a.traversed_edges, b.traversed_edges,
                "{name}: root {}",
                a.root
            );
        }
    }
}

/// The acceptance check for deterministic mode: two `run_sssp_benchmark`
/// calls with identical seeds run the scale-10 pipeline end to end (1D
/// degree-aware layout, 8 ranks) and must agree on every distance vector,
/// every superstep count, and every per-rank `NetStats` — and every root
/// passes the full five-rule validator.
#[test]
fn scale10_deterministic_pipeline_1d_replays_identically() {
    let mut cfg = BenchmarkConfig::quick(10, 8).deterministic(0);
    cfg.keep_paths = true;
    let a = run_sssp_benchmark(&cfg);
    let b = run_sssp_benchmark(&cfg);
    assert!(a.all_validated(), "first run fails validation");
    assert!(b.all_validated(), "second run fails validation");
    assert_eq!(a.runs.len(), b.runs.len());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.root, y.root);
        assert_eq!(x.stats, y.stats, "kernel counters moved between replays");
        let (px, py) = (
            x.paths.as_ref().expect("kept"),
            y.paths.as_ref().expect("kept"),
        );
        assert_eq!(px.dist.len(), 1 << 10);
        for v in 0..px.dist.len() {
            assert_eq!(
                px.dist[v].to_bits(),
                py.dist[v].to_bits(),
                "root {}: distance moved at vertex {v}",
                x.root
            );
        }
        assert_eq!(px.parent, py.parent, "root {}: parents moved", x.root);
        assert_eq!(x.sim_time_s, y.sim_time_s);
        assert_eq!(x.traversed_edges, y.traversed_edges);
    }
    assert_eq!(a.per_rank_net, b.per_rank_net, "per-rank NetStats moved");
    assert_eq!(a.net, b.net, "aggregate NetStats moved");
    assert_eq!(a.construction_time_s, b.construction_time_s);
}

/// Same property for the 2D grid layout (not driven by the benchmark
/// driver): the full scale-10 pipeline — generate, 2D-partition, solve,
/// gather — replays byte-identically under the deterministic scheduler,
/// and the result passes the full five-rule validator.
#[test]
fn scale10_deterministic_pipeline_2d_replays_identically() {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(10, 20220814));
    let el = gen.generate_all();
    let n = 1u64 << 10;
    let p = 4usize;
    let csr_root = {
        // deterministic non-isolated root: first vertex that has an edge
        let mut has_edge = vec![false; n as usize];
        for e in el.iter() {
            has_edge[e.u as usize] = true;
            has_edge[e.v as usize] = true;
        }
        (0..n)
            .find(|&v| has_edge[v as usize])
            .expect("nonempty graph")
    };

    let run = || {
        let report = Machine::new(MachineConfig::with_ranks(p).deterministic(0)).run(|ctx| {
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine = (lo..hi).map(|i| el.get(i));
            let mut g = Grid2DSssp::build(ctx, n, mine, 0.25);
            let stats = g.run(ctx, csr_root);
            (g.gather(ctx), stats.supersteps)
        });
        let stats = report.stats.clone();
        let (sp, supersteps) = report.results.into_iter().next().expect("rank 0");
        (sp, supersteps, stats)
    };

    let (sp_a, steps_a, net_a) = run();
    let (sp_b, steps_b, net_b) = run();

    // full five-rule validation on the gathered result
    let res = SsspResult {
        root: csr_root,
        dist: sp_a.dist.clone(),
        parent: sp_a.parent.clone(),
    };
    let rep = validate_sssp(n, &el, &res);
    assert!(rep.ok, "2D pipeline fails validation: {:?}", rep.errors);
    assert!(rep.reached > 1 && rep.traversed_edges > 0);

    for v in 0..n as usize {
        assert_eq!(
            sp_a.dist[v].to_bits(),
            sp_b.dist[v].to_bits(),
            "distance moved at {v}"
        );
    }
    assert_eq!(sp_a.parent, sp_b.parent, "parents moved between replays");
    assert_eq!(steps_a, steps_b, "superstep count moved between replays");
    assert_eq!(net_a, net_b, "per-rank NetStats moved between replays");
}

#[test]
fn single_rank_machine_works() {
    let rep = run_sssp_benchmark(&BenchmarkConfig::quick(8, 1));
    assert!(rep.all_validated());
    // a single rank sends no point-to-point traffic
    assert_eq!(rep.net.user_msgs, 0);
}

#[test]
fn many_ranks_few_vertices() {
    // more ranks than some ranks have vertices to own — degenerate shapes
    let rep = run_sssp_benchmark(&BenchmarkConfig::quick(6, 16));
    assert!(rep.all_validated());
}
