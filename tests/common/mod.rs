//! Tiny self-contained property-testing toolkit shared by the integration
//! tests. The workspace builds offline (no proptest), so randomized tests
//! run a fixed number of cases from a seeded SplitMix64 stream: failures
//! print the case seed, and rerunning is always deterministic.

// Different test binaries use different subsets of this module.
#![allow(dead_code)]

/// SplitMix64 — tiny, seedable, and statistically fine for test-case
/// generation. Same constants as `simnet::sched::splitmix64`.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`; requires `hi > lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * (hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Arbitrary small weighted multigraph: `(n, edges)` with `n` in `[2, 40)`,
/// up to 120 edges (self-loops and duplicates allowed — the kernels must
/// cope), weights in `(0, 1]`.
pub fn arb_graph(rng: &mut Rng) -> (u64, Vec<(u64, u64, f32)>) {
    let n = rng.range(2, 40);
    let m = rng.usize(0, 120);
    let edges = (0..m)
        .map(|_| (rng.range(0, n), rng.range(0, n), rng.f32(1e-3, 1.0)))
        .collect();
    (n, edges)
}

/// Adversarial graph families — classic constructions that break shortcuts
/// priority-queue SSSP implementations like to take. Each is a *seeded
/// family*: the shape is fixed, edge weights carry seeded jitter, so every
/// seed is a fresh adversary and every failure replays from its seed.
/// Returned as `(n, edges)` raw tuples so callers can build an `EdgeList`
/// or a `Csr` as needed.
pub mod adversarial {
    use super::Rng;

    /// Kills "settle on first insertion" Dijkstra variants: every vertex
    /// of a cheap chain sprays a far target set with weights *decreasing*
    /// along the chain, so each target's tentative distance improves on
    /// hop after hop and the queue fills with stale entries that must be
    /// skipped, not trusted.
    pub fn wrong_dijkstra_killer(seed: u64) -> (u64, Vec<(u64, u64, f32)>) {
        let mut rng = Rng::new(seed ^ 0xD1D1);
        let chain = 48u64;
        let targets = 16u64;
        let n = chain + 1 + targets;
        let mut edges = Vec::new();
        for i in 0..chain {
            edges.push((i, i + 1, 0.01 + rng.f32(0.0, 1e-3)));
        }
        for t in 0..targets {
            let tv = chain + 1 + t;
            for i in 0..chain {
                if rng.next_u64().is_multiple_of(3) {
                    // dist(i) ≈ 0.01·i, so the candidate through i is
                    // ≈ 2 + 0.05·chain − 0.04·i: strictly improving in i
                    let w = 2.0 + (chain - i) as f32 * 0.05 + rng.f32(0.0, 1e-3);
                    edges.push((i, tv, w));
                }
            }
        }
        (n, edges)
    }

    /// Kills queue-order label-correcting (SPFA): a hub chain whose edge
    /// weights shrink geometrically, each hub spraying a shared tail — a
    /// correction wave sweeps the whole tail once per hub unless the
    /// implementation orders work by priority.
    pub fn spfa_killer(seed: u64) -> (u64, Vec<(u64, u64, f32)>) {
        let mut rng = Rng::new(seed ^ 0x5FFA);
        let hubs = 24u64;
        let tail = 48u64;
        let n = hubs + 1 + tail;
        let mut edges = Vec::new();
        let mut w = 2.0f32;
        for i in 0..hubs {
            edges.push((i, i + 1, w + rng.f32(0.0, 1e-3)));
            w *= 0.7;
        }
        for i in 0..=hubs {
            for t in 0..tail {
                if rng.next_u64().is_multiple_of(4) {
                    let tv = hubs + 1 + t;
                    edges.push((i, tv, 8.0 - i as f32 * 0.3 + rng.f32(0.0, 1e-2)));
                }
            }
        }
        (n, edges)
    }

    /// A square grid whose weights swirl around the center in rings, so the
    /// shortest-path tree spirals instead of radiating: delta-stepping
    /// reinserts boundary vertices across many buckets, and 2D layouts see
    /// maximally unaligned frontiers. Integer ring arithmetic only — no
    /// trig, so the family is platform-exact.
    pub fn grid_swirl(seed: u64) -> (u64, Vec<(u64, u64, f32)>) {
        let mut rng = Rng::new(seed ^ 0x5817);
        let side = 13i64;
        let n = (side * side) as u64;
        let at = |r: i64, c: i64| (r * side + c) as u64;
        let center = side / 2;
        let mut edges = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let ring = (r - center).abs().max((c - center).abs());
                let twist = (r * 5 + c * 3 + ring * 7).rem_euclid(11) as f32;
                let w = 0.05 + twist * 0.13 + rng.f32(0.0, 1e-2);
                if c + 1 < side {
                    edges.push((at(r, c), at(r, c + 1), w));
                }
                if r + 1 < side {
                    edges.push((at(r, c), at(r + 1, c), w * 0.9 + 0.01));
                }
            }
        }
        (n, edges)
    }

    /// A long path with a handful of random chords: diameter ≈ n, so the
    /// bucket structure is almost entirely empty space — the adversary for
    /// next-bucket scanning (and the showcase for the radix occupancy
    /// index).
    pub fn almost_line(seed: u64) -> (u64, Vec<(u64, u64, f32)>) {
        let mut rng = Rng::new(seed ^ 0xA11E);
        let n = 220u64;
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push((i, i + 1, 0.9 + rng.f32(0.0, 0.2)));
        }
        for _ in 0..n / 20 {
            let a = rng.range(0, n);
            let b = rng.range(0, n);
            if a != b {
                edges.push((a, b, 5.0 + rng.f32(0.0, 10.0)));
            }
        }
        (n, edges)
    }

    /// Dense zero-weight plateaus: cliques of weight-0 edges bridged by
    /// positive edges (plus a few zero bridges). Exact SSSP must flood each
    /// plateau at one distance — the adversary for tie-breaking, bucket-0
    /// churn, and zero-cycle handling in the BMSSP transform.
    pub fn max_dense_zero(seed: u64) -> (u64, Vec<(u64, u64, f32)>) {
        let mut rng = Rng::new(seed ^ 0x2E80);
        let clusters = 6u64;
        let size = 8u64;
        let n = clusters * size;
        let mut edges = Vec::new();
        for cl in 0..clusters {
            let base = cl * size;
            for a in 0..size {
                for b in (a + 1)..size {
                    edges.push((base + a, base + b, 0.0));
                }
            }
        }
        for cl in 0..clusters - 1 {
            // a guaranteed positive bridge keeps the family connected
            let a = cl * size + rng.range(0, size);
            let b = (cl + 1) * size + rng.range(0, size);
            edges.push((a, b, 0.2 + rng.f32(0.0, 1.0)));
            // and a few extra bridges, some of them zero: plateaus merge
            for _ in 0..3 {
                let a = rng.range(0, n);
                let b = rng.range(0, n);
                let w = if rng.next_u64().is_multiple_of(3) {
                    0.0
                } else {
                    0.2 + rng.f32(0.0, 1.0)
                };
                if a != b {
                    edges.push((a, b, w));
                }
            }
        }
        (n, edges)
    }

    /// One adversarial case: (family name, vertex count, edge list).
    pub type AdversarialCase = (&'static str, u64, Vec<(u64, u64, f32)>);

    /// All five families at one seed, labeled for test output.
    pub fn all(seed: u64) -> Vec<AdversarialCase> {
        let (n1, e1) = wrong_dijkstra_killer(seed);
        let (n2, e2) = spfa_killer(seed);
        let (n3, e3) = grid_swirl(seed);
        let (n4, e4) = almost_line(seed);
        let (n5, e5) = max_dense_zero(seed);
        vec![
            ("wrong_dijkstra_killer", n1, e1),
            ("spfa_killer", n2, e2),
            ("grid_swirl", n3, e3),
            ("almost_line", n4, e4),
            ("max_dense_zero", n5, e5),
        ]
    }
}

/// Run `f` over `cases` deterministic seeds derived from `base_seed`,
/// reporting the failing case seed on panic so it can be replayed alone.
pub fn for_cases(base_seed: u64, cases: usize, f: impl Fn(&mut Rng) + std::panic::RefUnwindSafe) {
    for case in 0..cases {
        let seed = base_seed ^ (case as u64).wrapping_mul(0xD134_2543_DE82_EF95);
        let result = std::panic::catch_unwind(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed on case {case} (replay seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

/// Build a [`graph500::FaultPlan`] from the `G500_*` fault environment
/// variables, mirroring the experiment harnesses. Inactive (perfect
/// network) when unset, so default test runs are unchanged; CI's lossy
/// profile exports the variables to re-run whole suites over a faulty
/// network and prove the results don't move.
pub fn fault_overlay() -> graph500::FaultPlan {
    fn env_f64(name: &str) -> f64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0)
    }
    fn env_u64(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
    let plan = graph500::FaultPlan::none()
        .with_seed(env_u64("G500_FAULT_SEED", 0))
        .with_drop(env_f64("G500_DROP_RATE"))
        .with_duplicate(env_f64("G500_DUP_RATE"))
        .with_corrupt(env_f64("G500_CORRUPT_RATE"))
        .with_reorder(env_f64("G500_REORDER_RATE"))
        .with_retry_budget(env_u64("G500_RETRY_BUDGET", 16) as u32);
    plan.validate().expect("bad G500_* fault environment");
    plan
}
