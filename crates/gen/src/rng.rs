//! Counter-based (splittable) random number generation.
//!
//! Conventional sequential PRNGs cannot generate the i-th value without
//! generating the first i−1, which would serialise edge generation. A
//! *counter-based* RNG instead derives draw `j` of stream `i` purely from
//! `hash(seed, i, j)`, so 40 million cores can each generate their slice of
//! the 140-trillion-edge list with no coordination and bit-identical results
//! regardless of the rank count. This mirrors the aprng/Philox approach of
//! the official Graph500 reference code, with the SplitMix64 finalizer as the
//! mixing function.

use g500_graph::hash::{mix3, to_unit_f32, to_unit_f64};

/// A stateless stream of uniform draws identified by `(seed, stream)`.
///
/// Cloning or re-creating with the same ids reproduces the stream exactly.
#[derive(Clone, Copy, Debug)]
pub struct CounterRng {
    seed: u64,
    stream: u64,
}

impl CounterRng {
    /// New stream `stream` under `seed`.
    #[inline]
    pub fn new(seed: u64, stream: u64) -> Self {
        Self { seed, stream }
    }

    /// The raw 64-bit draw at counter `ctr`.
    #[inline]
    pub fn bits(&self, ctr: u64) -> u64 {
        mix3(self.seed, self.stream, ctr)
    }

    /// Uniform `f64` in `[0, 1)` at counter `ctr`.
    #[inline]
    pub fn unit_f64(&self, ctr: u64) -> f64 {
        to_unit_f64(self.bits(ctr))
    }

    /// Uniform `f32` in `[0, 1)` at counter `ctr`.
    #[inline]
    pub fn unit_f32(&self, ctr: u64) -> f32 {
        to_unit_f32(self.bits(ctr))
    }

    /// Uniform integer in `[0, bound)` at counter `ctr` (`bound > 0`).
    ///
    /// Uses 128-bit multiply-shift (Lemire) rather than modulo, keeping bias
    /// below 2⁻⁶⁴ without a rejection loop (a rejection loop would consume a
    /// data-dependent number of counters and break splittability).
    #[inline]
    pub fn below(&self, ctr: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.bits(ctr) as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let a = CounterRng::new(1, 2);
        let b = CounterRng::new(1, 2);
        for ctr in 0..100 {
            assert_eq!(a.bits(ctr), b.bits(ctr));
        }
    }

    #[test]
    fn streams_are_independent() {
        let a = CounterRng::new(1, 0);
        let b = CounterRng::new(1, 1);
        let same = (0..1000).filter(|&c| a.bits(c) == b.bits(c)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seeds_change_everything() {
        let a = CounterRng::new(1, 0);
        let b = CounterRng::new(2, 0);
        let same = (0..1000).filter(|&c| a.bits(c) == b.bits(c)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let r = CounterRng::new(99, 0);
        let mut hist = [0usize; 10];
        for c in 0..100_000 {
            let v = r.below(c, 10);
            assert!(v < 10);
            hist[v as usize] += 1;
        }
        for &h in &hist {
            assert!((8_000..12_000).contains(&h), "bucket count {h}");
        }
    }

    #[test]
    fn unit_draws_in_range() {
        let r = CounterRng::new(3, 4);
        for c in 0..10_000 {
            assert!((0.0..1.0).contains(&r.unit_f64(c)));
            assert!((0.0..1.0).contains(&r.unit_f32(c)));
        }
    }
}
