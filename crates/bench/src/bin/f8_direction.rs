//! F8 — Direction optimization: push vs pull vs hybrid.
//!
//! Runs the same workload under the three direction policies and reports
//! TEPS, per-iteration mix, and traffic. Pull pays a frontier broadcast
//! but saves per-edge updates on dense frontiers; hybrid should track the
//! better of the two at each density — the min-envelope claim.
//!
//! Overrides: `G500_SCALE` (15), `G500_RANKS` (8), `G500_ROOTS` (4).

use g500_bench::{banner, gteps, param, Table};
use g500_sssp::{Direction, OptConfig};
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn main() {
    let scale = param("G500_SCALE", 15) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let roots = param("G500_ROOTS", 4) as usize;
    banner(
        "F8",
        "direction optimization",
        &[("scale", scale.to_string()), ("ranks", ranks.to_string())],
    );

    let t = Table::new(&[
        "policy",
        "hmean_GTEPS",
        "push_iters",
        "pull_iters",
        "msgs",
        "MB",
        "validated",
    ]);
    for (name, dir) in [
        ("push", Direction::Push),
        ("pull", Direction::Pull),
        ("hybrid", Direction::Hybrid),
    ] {
        let mut cfg = BenchmarkConfig::graph500(scale, ranks);
        cfg.num_roots = roots;
        cfg.opts = OptConfig::all_on().with_direction(dir);
        let rep = run_sssp_benchmark(&cfg);
        let push: u64 = rep.runs.iter().map(|r| r.stats.push_iterations).sum();
        let pull: u64 = rep.runs.iter().map(|r| r.stats.pull_iterations).sum();
        t.row(&[
            name.to_string(),
            gteps(rep.teps.harmonic_mean),
            push.to_string(),
            pull.to_string(),
            rep.net.total_msgs().to_string(),
            format!("{:.2}", rep.net.total_bytes() as f64 / 1e6),
            rep.all_validated().to_string(),
        ]);
    }
    println!("\nexpected shape: hybrid >= max(push, pull); pull-only loses on the sparse tail, push-only on the dense crest");
}
