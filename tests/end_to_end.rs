//! End-to-end integration: the full Graph500 pipeline — generate →
//! partition → assemble → solve → gather → validate → TEPS — across
//! kernels, partitions, machine shapes and optimization configurations.

use graph500::simnet::{LogGP, Topology};
use graph500::sssp::{Direction, OptConfig};
use graph500::{run_bfs_benchmark, run_sssp_benchmark, BenchmarkConfig, PartitionStrategy};

#[test]
fn official_shape_run_validates() {
    // The real configuration in miniature: 64 roots, full stack.
    let mut cfg = BenchmarkConfig::graph500(9, 4);
    cfg.num_roots = 64;
    let rep = run_sssp_benchmark(&cfg);
    assert_eq!(rep.runs.len(), 64);
    assert!(rep.all_validated());
    assert!(rep.teps.harmonic_mean > 0.0);
    assert!(rep.teps.min <= rep.teps.harmonic_mean);
    assert!(rep.teps.harmonic_mean <= rep.teps.max);
}

#[test]
fn every_topology_validates() {
    for topo in [
        Topology::Crossbar,
        Topology::FatTree { radix: 4 },
        Topology::Torus2D { w: 2, h: 2 },
        Topology::Dragonfly { group: 2 },
    ] {
        let mut cfg = BenchmarkConfig::quick(8, 4);
        cfg.machine = cfg.machine.topology(topo);
        let rep = run_sssp_benchmark(&cfg);
        assert!(rep.all_validated(), "{topo:?}");
    }
}

#[test]
fn topology_changes_time_but_not_results() {
    let mk = |topo| {
        let mut cfg = BenchmarkConfig::quick(9, 8);
        cfg.machine = cfg.machine.topology(topo);
        run_sssp_benchmark(&cfg)
    };
    let xbar = mk(Topology::Crossbar);
    let torus = mk(Topology::Torus2D { w: 4, h: 2 });
    // identical traversal work...
    for (a, b) in xbar.runs.iter().zip(&torus.runs) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.traversed_edges, b.traversed_edges);
    }
    // ...but the multi-hop torus is slower in simulated time
    assert!(torus.teps.harmonic_mean < xbar.teps.harmonic_mean);
}

#[test]
fn slower_network_is_slower() {
    let mk = |loggp| {
        let mut cfg = BenchmarkConfig::quick(9, 4);
        cfg.machine = cfg.machine.loggp(loggp);
        cfg.validate = false;
        run_sssp_benchmark(&cfg).teps.harmonic_mean
    };
    let fast = mk(LogGP::default());
    let slow = mk(LogGP {
        latency: 50e-6,
        overhead: 10e-6,
        per_byte: 1.0 / 1e9,
    });
    assert!(slow < fast, "slow {slow} vs fast {fast}");
}

#[test]
fn bfs_and_sssp_agree_on_reachability() {
    let cfg = BenchmarkConfig::quick(9, 4);
    let bfs = run_bfs_benchmark(&cfg);
    let sssp = run_sssp_benchmark(&cfg);
    assert!(bfs.all_validated() && sssp.all_validated());
    // same roots (same seed) → the traversed-edge counts must coincide
    for (b, s) in bfs.runs.iter().zip(&sssp.runs) {
        assert_eq!(b.root, s.root);
        assert_eq!(b.traversed_edges, s.traversed_edges);
    }
}

#[test]
fn sssp_deterministic_across_runs() {
    let cfg = BenchmarkConfig::quick(8, 3);
    let a = run_sssp_benchmark(&cfg);
    let b = run_sssp_benchmark(&cfg);
    assert_eq!(a.teps.harmonic_mean, b.teps.harmonic_mean);
    assert_eq!(a.net.total_bytes(), b.net.total_bytes());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.traversed_edges, y.traversed_edges);
        assert_eq!(x.sim_time_s, y.sim_time_s);
    }
}

#[test]
fn optimizations_do_not_change_traversal() {
    let mk = |opts: OptConfig, part| {
        let mut cfg = BenchmarkConfig::quick(9, 4);
        cfg.opts = opts;
        cfg.partition = part;
        run_sssp_benchmark(&cfg)
    };
    let degree_aware = PartitionStrategy::DegreeAware { hub_factor: 8.0 };
    let base = mk(OptConfig::all_on(), degree_aware);
    for (name, rep) in [
        ("all_off", mk(OptConfig::all_off(), PartitionStrategy::Block)),
        ("pull", mk(OptConfig::all_on().with_direction(Direction::Pull), degree_aware)),
        ("cyclic", mk(OptConfig::all_on(), PartitionStrategy::Cyclic)),
    ] {
        assert!(rep.all_validated(), "{name}");
        for (a, b) in base.runs.iter().zip(&rep.runs) {
            assert_eq!(a.traversed_edges, b.traversed_edges, "{name}: root {}", a.root);
        }
    }
}

#[test]
fn single_rank_machine_works() {
    let rep = run_sssp_benchmark(&BenchmarkConfig::quick(8, 1));
    assert!(rep.all_validated());
    // a single rank sends no point-to-point traffic
    assert_eq!(rep.net.user_msgs, 0);
}

#[test]
fn many_ranks_few_vertices() {
    // more ranks than some ranks have vertices to own — degenerate shapes
    let rep = run_sssp_benchmark(&BenchmarkConfig::quick(6, 16));
    assert!(rep.all_validated());
}
