//! Crash recovery: superstep-boundary checkpoints, deterministic failure
//! detection, and restore-and-replay.
//!
//! The paper's record runs hold 40M cores for hours; at that scale process
//! death is a *when*, not an *if*. This module extends the fault model of
//! [`crate::fault`] from lossy links to dying ranks, recovered with the
//! classic coordinated checkpoint/rollback discipline:
//!
//! * **Checkpoints** are taken at superstep boundaries (collectively
//!   consistent points of the kernel loop), every
//!   [`CrashPlan::checkpoint_interval`] supersteps. Each rank encodes its
//!   mutable kernel state through the [`Checkpoint`] trait, keeps the bytes
//!   locally, and ships a replica to its *buddy* rank `(r + 1) % p` — the
//!   in-memory equivalent of buddy-node checkpointing.
//! * **Detection** is deterministic: at every probe point each rank draws
//!   its seeded [`CrashLottery`](crate::fault::CrashLottery), then all
//!   ranks run an *agreement round* (an OR-allreduce of the crash bitmask)
//!   so every survivor adopts the identical verdict. Survivors charge the
//!   plan's `detect_timeout_s` of virtual wait — the timeout-at-the-next-
//!   collective failure-detector model.
//! * **Restore-and-replay**: on a crash verdict every rank rolls back to
//!   the last checkpoint (the crashed rank's copy is re-shipped by its
//!   buddy after `respawn_s`), redundancy is re-established, and the loop
//!   replays. The crash lottery's draw counter is *never* rolled back, so
//!   a crash window fires exactly once and replay terminates.
//!
//! ## Determinism contract
//!
//! Under any crash schedule within [`CrashPlan::recovery_budget`], the
//! final kernel state is **byte-identical** to the fault-free run at any
//! `G500_THREADS` and under either scheduler mode: rollback restores exact
//! state (bucket queues are snapshotted verbatim, stale entries included),
//! replay re-executes the identical deterministic supersteps, and only
//! virtual time, recovery trace spans, and the crash/checkpoint counters
//! in [`crate::NetStats`] move.
//!
//! ## Escalation
//!
//! Faults the machinery cannot mask become a typed [`FaultEscalation`]:
//! a retry-budget-exhausted link (carried out of the transport by panic
//! payload and surfaced as `Err` by [`Machine::try_run`]), an exhausted
//! recovery budget, or a checkpoint lost because a rank and its buddy died
//! in the same window. Recovery errors are *agreement-backed*: every rank
//! computes the identical verdict from the identical mask, so every rank
//! returns the same `Err` from the same collective point — which is what
//! lets the query engine retry or shed a window in lockstep instead of
//! deadlocking.
//!
//! [`Machine::try_run`]: crate::machine::Machine::try_run

use crate::fault::{CrashLottery, CrashPlan};
use crate::rank::{RankCtx, Tag, TrafficClass};
use crate::trace::TraceCode;
use crate::transport::TransportError;

/// Tags at or above this value (and below the subcomm space at `1 << 52`)
/// are reserved for recovery traffic: checkpoint replication and restore
/// re-shipment. Disjoint from user tags (`< 1 << 48`) and from global
/// collective tags (bit 48 set, bit 49 clear for any realistic sequence
/// count).
pub const TAG_RECOVERY_BASE: Tag = 1 << 49;

/// A fault the masking layers could not absorb, escalated as a typed error
/// instead of a raw panic so drivers and the query engine can degrade
/// gracefully.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEscalation {
    /// The reliable transport gave up on a link (retry budget exhausted or
    /// an undecodable payload). Fail-stop for the whole job: peers may be
    /// mid-collective, so no consistent recovery point exists.
    Transport(TransportError),
    /// More rank crashes than the recovery budget allows. Returned
    /// identically by every rank from the agreement round.
    RecoveryBudgetExhausted {
        /// The plan's recovery budget.
        budget: u32,
        /// Crashes counted so far (including the ones in this verdict).
        crashes: u32,
        /// Superstep epoch at which the budget died.
        epoch: u64,
    },
    /// A rank and the buddy holding its checkpoint died in the same
    /// window, so the snapshot is unrecoverable. (With one rank there is
    /// no buddy and any crash is immediately fatal.)
    CheckpointLost {
        /// The crashed rank whose state is gone.
        rank: usize,
        /// The buddy that held its replica.
        buddy: usize,
    },
}

impl std::fmt::Display for FaultEscalation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Delegates to TransportError so the historical diagnosable
            // message text ("retry budget exhausted on link ...") survives
            // the move from panic to typed error.
            FaultEscalation::Transport(e) => write!(f, "{e}"),
            FaultEscalation::RecoveryBudgetExhausted {
                budget,
                crashes,
                epoch,
            } => write!(
                f,
                "recovery budget exhausted: {crashes} rank crash(es) exceed budget {budget} \
                 at superstep epoch {epoch}"
            ),
            FaultEscalation::CheckpointLost { rank, buddy } => write!(
                f,
                "checkpoint lost: rank {rank} and its checkpoint buddy {buddy} crashed in \
                 the same window"
            ),
        }
    }
}

impl std::error::Error for FaultEscalation {}

/// Kernel state that can be snapshotted and rolled back. Implementations
/// must round-trip exactly: `load(save(x))` restores byte-identical state,
/// including "cosmetic" internals like stale bucket-queue entries, because
/// replay determinism is defined as bitwise equality with the fault-free
/// run.
pub trait Checkpoint {
    /// Append this state's complete encoding to `out`.
    fn save(&self, out: &mut Vec<u8>);
    /// Replace this state from an encoding produced by [`Checkpoint::save`].
    fn load(&mut self, buf: &[u8]);
}

/// Little-endian length-prefixed primitives for [`Checkpoint`]
/// implementations (and their round-trip property tests). Decoders panic
/// on malformed input: a corrupt checkpoint is a logic error inside the
/// simulator, not a recoverable condition.
pub mod codec {
    /// Append a `u64`.
    pub fn put_u64(out: &mut Vec<u8>, x: u64) {
        out.extend_from_slice(&x.to_le_bytes());
    }

    /// Read a `u64` at `*pos`, advancing it.
    pub fn get_u64(buf: &[u8], pos: &mut usize) -> u64 {
        let x = u64::from_le_bytes(
            buf[*pos..*pos + 8]
                .try_into()
                .expect("checkpoint truncated"),
        );
        *pos += 8;
        x
    }

    /// Append an `f64` as its bit pattern (NaN-exact).
    pub fn put_f64(out: &mut Vec<u8>, x: f64) {
        put_u64(out, x.to_bits());
    }

    /// Read an `f64` bit pattern at `*pos`, advancing it.
    pub fn get_f64(buf: &[u8], pos: &mut usize) -> f64 {
        f64::from_bits(get_u64(buf, pos))
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64_slice(out: &mut Vec<u8>, xs: &[u64]) {
        put_u64(out, xs.len() as u64);
        for &x in xs {
            put_u64(out, x);
        }
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64_vec(buf: &[u8], pos: &mut usize) -> Vec<u64> {
        let n = get_u64(buf, pos) as usize;
        (0..n).map(|_| get_u64(buf, pos)).collect()
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32_slice(out: &mut Vec<u8>, xs: &[u32]) {
        put_u64(out, xs.len() as u64);
        for &x in xs {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32_vec(buf: &[u8], pos: &mut usize) -> Vec<u32> {
        let n = get_u64(buf, pos) as usize;
        (0..n)
            .map(|_| {
                let x = u32::from_le_bytes(
                    buf[*pos..*pos + 4]
                        .try_into()
                        .expect("checkpoint truncated"),
                );
                *pos += 4;
                x
            })
            .collect()
    }

    /// Append a length-prefixed `f64` slice (bit patterns).
    pub fn put_f64_slice(out: &mut Vec<u8>, xs: &[f64]) {
        put_u64(out, xs.len() as u64);
        for &x in xs {
            put_f64(out, x);
        }
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64_vec(buf: &[u8], pos: &mut usize) -> Vec<f64> {
        let n = get_u64(buf, pos) as usize;
        (0..n).map(|_| get_f64(buf, pos)).collect()
    }

    /// Append a length-prefixed bool slice (one byte each; checkpoints are
    /// transient in-memory objects, simplicity beats bit-packing).
    pub fn put_bool_slice(out: &mut Vec<u8>, xs: &[bool]) {
        put_u64(out, xs.len() as u64);
        out.extend(xs.iter().map(|&b| b as u8));
    }

    /// Read a length-prefixed bool vector.
    pub fn get_bool_vec(buf: &[u8], pos: &mut usize) -> Vec<bool> {
        let n = get_u64(buf, pos) as usize;
        let v = buf[*pos..*pos + n].iter().map(|&b| b != 0).collect();
        *pos += n;
        v
    }
}

/// Per-rank crash machinery that outlives individual kernel runs (the
/// query engine runs many windows against one [`RankCtx`]): the lottery's
/// monotone draw stream, the job-wide restore budget, and the recovery tag
/// namespace. Lives inside `RankCtx`; updated only at collectively
/// consistent points, so its fields agree across ranks wherever agreement
/// matters (`restores_used`, `recovery_seq`).
pub(crate) struct CrashState {
    pub(crate) plan: CrashPlan,
    pub(crate) lottery: CrashLottery,
    /// Crashes recovered so far across the whole job (agreed verdicts, so
    /// identical on every rank).
    pub(crate) restores_used: u32,
    /// Monotone namespace counter for recovery-traffic tags.
    pub(crate) recovery_seq: u64,
}

impl CrashState {
    pub(crate) fn new(plan: CrashPlan, rank: usize) -> Self {
        CrashState {
            plan,
            lottery: CrashLottery::for_rank(&plan, rank),
            restores_used: 0,
            recovery_seq: 0,
        }
    }
}

/// One kernel run's checkpoint/restore driver. Obtained from
/// [`Recovery::begin`] at kernel entry (`None` when the machine has no
/// crash plan — the fault-free path stays zero-cost); the kernel then
/// calls [`Recovery::bucket_boundary`] at the top of its outer bucket loop
/// and optionally [`Recovery::probe`] at inner superstep boundaries. Both
/// return `Ok(true)` when a crash was recovered and the caller must
/// restart its outer loop from the restored state.
pub struct Recovery {
    interval: u64,
    /// Supersteps completed (successful probes) since kernel entry.
    epoch: u64,
    /// Epoch of the checkpoint currently held.
    ckpt_epoch: u64,
    /// This rank's own snapshot at `ckpt_epoch`.
    my_ckpt: Vec<u8>,
    /// The snapshot of rank `(me - 1 + p) % p`, held as its buddy.
    buddy_ckpt: Vec<u8>,
    /// Pre-crash epoch the current replay must re-reach (closes the
    /// `Replay` trace span).
    replay_until: Option<u64>,
}

impl Recovery {
    /// Start recovery for one kernel run: `None` when the machine has no
    /// active [`CrashPlan`], otherwise takes the epoch-0 checkpoint of
    /// `state` and returns the driver.
    pub fn begin(ctx: &mut RankCtx, state: &dyn Checkpoint) -> Option<Recovery> {
        ctx.crash_interval().map(|interval| {
            let mut rec = Recovery {
                interval,
                epoch: 0,
                ckpt_epoch: 0,
                my_ckpt: Vec::new(),
                buddy_ckpt: Vec::new(),
                replay_until: None,
            };
            rec.take_checkpoint(ctx, state);
            rec
        })
    }

    /// Superstep-boundary hook for the outer bucket loop: runs a crash
    /// probe, and — when no crash fired — takes a periodic checkpoint.
    /// `Ok(true)` means a restore happened and the caller must re-enter
    /// its outer loop against the rolled-back state.
    pub fn bucket_boundary(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut dyn Checkpoint,
    ) -> Result<bool, FaultEscalation> {
        let restored = self.probe(ctx, state)?;
        if !restored && self.epoch - self.ckpt_epoch >= self.interval {
            self.take_checkpoint(ctx, state);
        }
        Ok(restored)
    }

    /// Crash probe at any collectively consistent point: every rank draws
    /// its lottery, the verdict is agreed by an OR-allreduce of the crash
    /// bitmask, and on a crash all ranks roll `state` back to the last
    /// checkpoint. Returns `Ok(true)` after a restore.
    pub fn probe(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut dyn Checkpoint,
    ) -> Result<bool, FaultEscalation> {
        let p = ctx.size();
        let me = ctx.rank();
        let i_die = ctx.crash_draw();
        // Agreement round: one OR-allreduce word per 64 ranks. Every rank
        // computes the verdict from the identical mask.
        let words = p.div_ceil(64);
        let mut mask = vec![0u64; words];
        if i_die {
            mask[me / 64] |= 1 << (me % 64);
        }
        for w in mask.iter_mut() {
            *w = ctx.allreduce(*w, |a, b| *a | *b);
        }
        let crashed: Vec<usize> = (0..p)
            .filter(|r| (mask[r / 64] >> (r % 64)) & 1 == 1)
            .collect();
        if crashed.is_empty() {
            self.epoch += 1;
            self.close_replay(ctx);
            return Ok(false);
        }
        self.recover(ctx, state, &crashed)?;
        Ok(true)
    }

    /// Close the replay span once the pre-crash epoch is re-reached.
    fn close_replay(&mut self, ctx: &mut RankCtx) {
        if let Some(t) = self.replay_until {
            if self.epoch >= t {
                ctx.trace_end(TraceCode::Replay, t, self.epoch);
                self.replay_until = None;
            }
        }
    }

    /// Finish the kernel run, closing a replay span left open by a crash
    /// near the end of the loop.
    pub fn finish(mut self, ctx: &mut RankCtx) {
        if let Some(t) = self.replay_until.take() {
            ctx.trace_end(TraceCode::Replay, t, self.epoch);
        }
    }

    /// Encode `state`, keep it, and replicate it to the buddy rank.
    fn take_checkpoint(&mut self, ctx: &mut RankCtx, state: &dyn Checkpoint) {
        let mut buf = Vec::new();
        state.save(&mut buf);
        let bytes = buf.len() as u64;
        ctx.trace_begin(TraceCode::CheckpointWrite, bytes, self.epoch);
        // Encoding cost: modeled as one op per word serialized.
        ctx.charge_compute(bytes / 8 + 1);
        self.my_ckpt = buf;
        self.ckpt_epoch = self.epoch;
        self.replicate(ctx);
        let s = ctx.stats_mut();
        s.checkpoints += 1;
        s.checkpoint_bytes += bytes;
        ctx.trace_end(TraceCode::CheckpointWrite, bytes, self.epoch);
    }

    /// Ship `my_ckpt` to the buddy `(me + 1) % p` and collect the
    /// predecessor's replica. Eager sends, so the ring cannot deadlock.
    fn replicate(&mut self, ctx: &mut RankCtx) {
        let p = ctx.size();
        let me = ctx.rank();
        if p == 1 {
            return;
        }
        let tag = TAG_RECOVERY_BASE | (ctx.next_recovery_seq() << 1);
        let buddy = (me + 1) % p;
        let pred = (me + p - 1) % p;
        ctx.send_bytes_class(buddy, tag, self.my_ckpt.clone(), TrafficClass::Collective);
        self.buddy_ckpt = ctx.recv_bytes_class(pred, tag);
    }

    /// Execute an agreed crash verdict: budget and buddy-loss checks (the
    /// same `Err` on every rank, by construction), detection/respawn time,
    /// checkpoint re-shipment to the respawned ranks, rollback, and
    /// re-replication.
    fn recover(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut dyn Checkpoint,
        crashed: &[usize],
    ) -> Result<(), FaultEscalation> {
        let p = ctx.size();
        let me = ctx.rank();
        let plan = ctx.crash_plan();
        let used = ctx.add_restores(crashed.len() as u32);
        if used > plan.recovery_budget {
            return Err(FaultEscalation::RecoveryBudgetExhausted {
                budget: plan.recovery_budget,
                crashes: used,
                epoch: self.epoch,
            });
        }
        for &c in crashed {
            let buddy = (c + 1) % p;
            if buddy == c || crashed.contains(&buddy) {
                return Err(FaultEscalation::CheckpointLost { rank: c, buddy });
            }
        }
        let pre_epoch = self.epoch;
        ctx.trace_begin(TraceCode::Restore, crashed.len() as u64, self.ckpt_epoch);
        // The failure detector: every rank spends the timeout discovering
        // the death at its next collective.
        ctx.charge_wait(plan.detect_timeout_s);
        if crashed.contains(&me) {
            // Simulated memory loss + respawn: this rank's own snapshot and
            // the replica it held for its predecessor are gone.
            ctx.charge_wait(plan.respawn_s);
            self.my_ckpt.clear();
            self.buddy_ckpt.clear();
            ctx.stats_mut().crashes += 1;
        }
        // Buddies re-ship the snapshots of the respawned ranks.
        let tag = TAG_RECOVERY_BASE | (ctx.next_recovery_seq() << 1) | 1;
        for &c in crashed {
            let buddy = (c + 1) % p;
            if me == buddy {
                ctx.send_bytes_class(c, tag, self.buddy_ckpt.clone(), TrafficClass::Collective);
            }
            if me == c {
                self.my_ckpt = ctx.recv_bytes_class(buddy, tag);
            }
        }
        // Coordinated rollback: every rank re-enters the checkpoint epoch.
        state.load(&self.my_ckpt);
        let replayed = pre_epoch - self.ckpt_epoch;
        self.epoch = self.ckpt_epoch;
        let s = ctx.stats_mut();
        s.restores += 1;
        s.replayed_supersteps += replayed;
        // Redundancy for the respawned ranks' predecessors was lost with
        // their memory; a fresh replication round restores it everywhere.
        self.replicate(ctx);
        ctx.trace_end(TraceCode::Restore, crashed.len() as u64, self.ckpt_epoch);
        match self.replay_until {
            Some(t) => self.replay_until = Some(t.max(pre_epoch)),
            None if pre_epoch > self.epoch => {
                ctx.trace_begin(TraceCode::Replay, replayed, self.epoch);
                self.replay_until = Some(pre_epoch);
            }
            None => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashPlan;
    use crate::machine::{Machine, MachineConfig};

    /// A little iterative SPMD kernel with checkpointable state: `step`
    /// must be part of the snapshot so rollback rewinds the loop itself.
    struct IterState {
        step: u64,
        vals: Vec<u64>,
    }

    impl Checkpoint for IterState {
        fn save(&self, out: &mut Vec<u8>) {
            codec::put_u64(out, self.step);
            codec::put_u64_slice(out, &self.vals);
        }
        fn load(&mut self, buf: &[u8]) {
            let mut pos = 0;
            self.step = codec::get_u64(buf, &mut pos);
            self.vals = codec::get_u64_vec(buf, &mut pos);
        }
    }

    fn iter_prog(ctx: &mut RankCtx) -> Result<Vec<u64>, FaultEscalation> {
        let mut st = IterState {
            step: 0,
            vals: vec![ctx.rank() as u64 + 1; 4],
        };
        let mut rec = Recovery::begin(ctx, &st);
        while st.step < 12 {
            if let Some(r) = rec.as_mut() {
                if r.bucket_boundary(ctx, &mut st)? {
                    continue; // rolled back; st.step rewound with the state
                }
            }
            let total = ctx.allreduce_sum(st.vals[0]);
            for v in st.vals.iter_mut() {
                *v = v.wrapping_mul(31).wrapping_add(total);
            }
            st.step += 1;
        }
        if let Some(r) = rec {
            r.finish(ctx);
        }
        Ok(st.vals)
    }

    #[test]
    fn forced_crash_recovers_to_fault_free_state() {
        let clean = Machine::new(MachineConfig::with_ranks(4)).run(iter_prog);
        let plan = CrashPlan::none()
            .with_forced(1, 5)
            .with_checkpoint_interval(3);
        let crashed = Machine::new(MachineConfig::with_ranks(4).crashes(plan)).run(iter_prog);
        for r in 0..4 {
            assert_eq!(
                clean.results[r], crashed.results[r],
                "rank {r}: recovery must reproduce fault-free values"
            );
        }
        let total = crashed.total_stats();
        assert_eq!(total.crashes, 1, "exactly the forced crash fires");
        assert_eq!(total.restores, 4, "all ranks roll back together");
        assert!(total.replayed_supersteps > 0, "the rollback loses work");
        assert!(total.checkpoints >= 4, "epoch-0 checkpoints at minimum");
        assert!(total.checkpoint_bytes > 0);
        assert!(
            crashed.sim_time_s > clean.sim_time_s,
            "detection, respawn, and replay must cost virtual time"
        );
    }

    #[test]
    fn crash_recovery_is_scheduler_invariant() {
        let plan = CrashPlan::random(0xC0FFEE, 0.02).with_checkpoint_interval(2);
        let threads = Machine::new(MachineConfig::with_ranks(4).crashes(plan)).run(iter_prog);
        let canon = Machine::new(MachineConfig::with_ranks(4).crashes(plan).deterministic(0))
            .run(iter_prog);
        assert_eq!(threads.results, canon.results);
        assert_eq!(
            threads.stats, canon.stats,
            "crash schedule and recovery counters must not depend on the scheduler"
        );
        assert_eq!(threads.sim_time_s.to_bits(), canon.sim_time_s.to_bits());
    }

    #[test]
    fn budget_exhaustion_returns_identical_error_on_every_rank() {
        let plan = CrashPlan::none()
            .with_forced(0, 2)
            .with_forced(2, 6)
            .with_recovery_budget(1)
            .with_checkpoint_interval(2);
        let rep = Machine::new(MachineConfig::with_ranks(4).crashes(plan)).run(iter_prog);
        let expect = &rep.results[0];
        assert!(
            matches!(
                expect,
                Err(FaultEscalation::RecoveryBudgetExhausted {
                    budget: 1,
                    crashes: 2,
                    ..
                })
            ),
            "got {expect:?}"
        );
        for r in rep.results.iter() {
            assert_eq!(r, expect, "agreement must make the verdict identical");
        }
    }

    #[test]
    fn buddy_loss_is_detected_as_checkpoint_lost() {
        // ranks 1 and 2 die in the same window: rank 2 holds rank 1's
        // replica, so rank 1's state is unrecoverable
        let plan = CrashPlan::none().with_forced(1, 3).with_forced(2, 3);
        let rep = Machine::new(MachineConfig::with_ranks(4).crashes(plan)).run(iter_prog);
        for r in rep.results.iter() {
            assert_eq!(
                r,
                &Err(FaultEscalation::CheckpointLost { rank: 1, buddy: 2 })
            );
        }
    }

    #[test]
    fn single_rank_crash_is_immediately_fatal() {
        let plan = CrashPlan::none().with_forced(0, 1);
        let rep = Machine::new(MachineConfig::with_ranks(1).crashes(plan)).run(iter_prog);
        assert_eq!(
            rep.results[0],
            Err(FaultEscalation::CheckpointLost { rank: 0, buddy: 0 })
        );
    }

    #[test]
    fn escalation_display_keeps_transport_text() {
        let e = FaultEscalation::Transport(TransportError::RetryBudgetExhausted {
            src: 0,
            dst: 1,
            tag: 0x10,
            seq: 3,
            retries: 16,
        });
        let msg = format!("{e}");
        assert!(
            msg.contains("retry budget exhausted on link 0 -> 1"),
            "{msg}"
        );
        let b = FaultEscalation::RecoveryBudgetExhausted {
            budget: 2,
            crashes: 3,
            epoch: 7,
        };
        assert!(format!("{b}").contains("recovery budget exhausted"));
        let l = FaultEscalation::CheckpointLost { rank: 1, buddy: 2 };
        assert!(format!("{l}").contains("checkpoint lost"));
    }

    #[test]
    fn codec_round_trips() {
        let mut buf = Vec::new();
        codec::put_u64(&mut buf, 42);
        codec::put_f64(&mut buf, f64::INFINITY);
        codec::put_u64_slice(&mut buf, &[1, 2, 3]);
        codec::put_u32_slice(&mut buf, &[7, 8]);
        codec::put_f64_slice(&mut buf, &[0.5, -1.25]);
        codec::put_bool_slice(&mut buf, &[true, false, true]);
        let mut pos = 0;
        assert_eq!(codec::get_u64(&buf, &mut pos), 42);
        assert_eq!(codec::get_f64(&buf, &mut pos), f64::INFINITY);
        assert_eq!(codec::get_u64_vec(&buf, &mut pos), vec![1, 2, 3]);
        assert_eq!(codec::get_u32_vec(&buf, &mut pos), vec![7, 8]);
        assert_eq!(codec::get_f64_vec(&buf, &mut pos), vec![0.5, -1.25]);
        assert_eq!(codec::get_bool_vec(&buf, &mut pos), vec![true, false, true]);
        assert_eq!(pos, buf.len());
    }
}
