//! F11 — Batched multi-source SSSP (the extension experiment).
//!
//! The Graph500 harness runs 64 searches; run them `B` at a time and
//! measure the superstep amortization: total supersteps, total simulated
//! time, and the effective uplift over back-to-back single-source runs.
//! Since PR 8 the batching loop *is* the query engine: the roots go in as
//! full queries and the admission window width is the batch size (caches
//! disabled, so this measures batching alone).
//!
//! Overrides: `G500_SCALE` (14), `G500_RANKS` (8), `G500_NROOTS` (16).

use g500_bench::{banner, param, secs, Table};
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_partition::{assemble_local_graph, Block1D};
use g500_sssp::{OptConfig, Query, QueryEngine, ServeConfig};
use graph500::simnet::{Machine, MachineConfig};

fn main() {
    let scale = param("G500_SCALE", 14) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let nroots = param("G500_NROOTS", 16) as usize;
    banner(
        "F11",
        "multi-source batching",
        &[
            ("scale", scale.to_string()),
            ("ranks", ranks.to_string()),
            ("roots", nroots.to_string()),
        ],
    );

    let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 5));
    let n = gen.params().num_vertices();
    let m = gen.params().num_edges();

    // deterministic roots with edges (scan a generator sample)
    let sample = gen.edge_block(0..m.min(1 << 16));
    let mut roots: Vec<u64> = Vec::new();
    for e in sample.iter() {
        if roots.len() >= nroots {
            break;
        }
        if !roots.contains(&e.u) {
            roots.push(e.u);
        }
    }
    let queries: Vec<Query> = roots.iter().map(|&r| Query::full(r)).collect();

    let t = Table::new(&["batch_size", "batches", "supersteps", "sim_time", "speedup"]);
    let mut base_time = 0.0f64;
    for batch in [1usize, 2, 4, 8, 16] {
        if batch > nroots {
            break;
        }
        let rep = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
            let part = Block1D::new(n, ranks);
            let (lo, hi) = (
                ctx.rank() as u64 * m / ranks as u64,
                (ctx.rank() as u64 + 1) * m / ranks as u64,
            );
            let mine = gen.edge_block(lo..hi);
            ctx.charge_compute(hi - lo);
            let g = assemble_local_graph(ctx, mine.iter(), part);
            let cfg = ServeConfig {
                batch_width: batch,
                opts: OptConfig::all_on().with_delta(0.125),
                num_landmarks: 0, // isolate batching from caching
                lru_capacity: 0,
                keep_paths: false,
                deadline_s: f64::INFINITY,
            };
            let kernel_start = ctx.now();
            let mut engine = QueryEngine::new(ctx, &g, cfg);
            engine.serve(ctx, &queries);
            let elapsed =
                ctx.allreduce(ctx.now() - kernel_start, |a, b| if a > b { *a } else { *b });
            (engine.stats().supersteps, engine.stats().batches, elapsed)
        });
        let (steps, batches, time) = rep.results[0];
        if batch == 1 {
            base_time = time;
        }
        t.row(&[
            batch.to_string(),
            batches.to_string(),
            steps.to_string(),
            secs(time),
            format!("{:.2}x", base_time / time),
        ]);
    }
    println!("\nexpected shape: supersteps fall roughly like 1/batch on the tail-dominated regime; time follows until bandwidth saturates");
}
