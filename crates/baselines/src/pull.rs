//! Partial-order pull structure for the BMSSP recursion (Duan et al.,
//! arXiv:2504.17033, Lemma 4.1).
//!
//! The paper's data structure `D` supports three operations over
//! (vertex, distance-key) pairs bounded above by `B`:
//!
//! * `insert(v, k)` — add or improve a pair (smaller key wins);
//! * `batch_prepend(pairs)` — bulk-add pairs known to be smaller than
//!   every key currently inside (produced by a recursive call's output);
//! * `pull()` — remove a batch of ≤ `M` pairs with the smallest keys and
//!   return them with a *separating bound* `Bᵢ`: every removed key is
//!   `< Bᵢ` and every remaining key is `≥ Bᵢ`.
//!
//! The paper engineers linked blocks to make `batch_prepend` cheap; the
//! asymptotics of that engineering are irrelevant at this repo's scales,
//! so this implementation keeps the *interface and its contracts* (the
//! recursion's correctness argument only uses those) over a lazy-deletion
//! binary heap of `(key, vertex)` pairs plus a best-key map: decrease-key
//! pushes a fresh entry and the stale one is skipped at pop time against
//! the map (the same trick the workspace's Dijkstra uses). Live entries
//! leave the heap in ascending `(key, vertex)` order — exactly the
//! iteration order of the ordered set this replaced, so the swap is
//! invisible to BMSSP's determinism.
//! One deliberate strengthening: `pull` extends the batch to whole
//! tie-groups, so the separating bound is always *strict* — callers
//! (the BMSSP base case) must therefore accept more than `M` sources,
//! which they do.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Partial-order pull structure: batched smallest-key extraction with a
/// strict separating bound. Keys are `u64` distance keys (see
/// [`crate::weight_to_key`]); values are vertex ids.
#[derive(Debug)]
pub struct PullStructure {
    /// Batch size hint `M`; `pull` returns at least `M` pairs when that
    /// many are present (more if the `M`-th key is tied).
    batch: usize,
    /// Upper bound `B`: keys must be `< upper`; the final separating
    /// bound degrades to `upper` when the structure drains.
    upper: u64,
    /// Min-heap of (key, vertex) with lazy deletion: an entry is *live*
    /// iff `best[v] == key`; anything else is a superseded leftover.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    best: HashMap<u32, u64>,
}

impl PullStructure {
    /// Empty structure with batch-size hint `batch` (`M` in the paper,
    /// clamped to ≥ 1) and exclusive key upper bound `upper` (`B`).
    pub fn new(batch: usize, upper: u64) -> Self {
        Self {
            batch: batch.max(1),
            upper,
            heap: BinaryHeap::new(),
            best: HashMap::new(),
        }
    }

    /// Number of distinct vertices currently held.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True when no pairs remain.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// Key of the smallest live entry, discarding stale heap prefix.
    fn peek_live_key(&mut self) -> Option<u64> {
        while let Some(&Reverse((k, v))) = self.heap.peek() {
            if self.best.get(&v) == Some(&k) {
                return Some(k);
            }
            self.heap.pop();
        }
        None
    }

    /// Add `(v, key)`, keeping only the smallest key per vertex. Keys at
    /// or above the upper bound are rejected — the recursion level above
    /// owns them.
    pub fn insert(&mut self, v: u32, key: u64) {
        if key >= self.upper {
            return;
        }
        if self.best.get(&v).is_some_and(|&old| old <= key) {
            return;
        }
        self.best.insert(v, key);
        self.heap.push(Reverse((key, v)));
    }

    /// Bulk-add pairs produced below the current minimum. The paper
    /// exploits the "all smaller" precondition for speed; here it is just
    /// a sequence of [`insert`](Self::insert)s (contract-compatible:
    /// smaller key per vertex still wins), so the precondition is only
    /// debug-checked, not required.
    pub fn batch_prepend(&mut self, pairs: impl IntoIterator<Item = (u32, u64)>) {
        let pre_min = self.peek_live_key();
        for (v, k) in pairs {
            debug_assert!(
                pre_min.is_none_or(|min| k <= min),
                "batch_prepend key {k} above pre-batch minimum {pre_min:?}"
            );
            self.insert(v, k);
        }
    }

    /// Remove a batch of smallest-key pairs and return `(vertices, bound)`
    /// with every removed key `< bound` and every remaining key `≥ bound`.
    ///
    /// At least `min(batch, len)` pairs are removed; the batch is extended
    /// over the trailing tie-group so the bound is strict. When the
    /// structure empties, `bound` is the upper bound `B`.
    pub fn pull(&mut self) -> (Vec<u32>, u64) {
        let mut out = Vec::new();
        let mut last_key = None;
        while let Some(k) = self.peek_live_key() {
            if out.len() >= self.batch && last_key != Some(k) {
                // batch full and the next key starts a new group: k is a
                // strict separating bound
                return (out, k);
            }
            let Reverse((_, v)) = self.heap.pop().expect("peeked entry");
            self.best.remove(&v);
            out.push(v);
            last_key = Some(k);
        }
        (out, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_returns_smallest_with_strict_bound() {
        let mut d = PullStructure::new(2, 100);
        for (v, k) in [(1u32, 30u64), (2, 10), (3, 20), (4, 40)] {
            d.insert(v, k);
        }
        let (batch, bound) = d.pull();
        assert_eq!(batch, vec![2, 3]);
        assert_eq!(bound, 30);
        assert_eq!(d.len(), 2);
        let (batch, bound) = d.pull();
        assert_eq!(batch, vec![1, 4]);
        assert_eq!(bound, 100);
        assert!(d.is_empty());
    }

    #[test]
    fn ties_extend_the_batch_keeping_bound_strict() {
        let mut d = PullStructure::new(2, 100);
        for (v, k) in [(1u32, 5u64), (2, 5), (3, 5), (4, 7)] {
            d.insert(v, k);
        }
        let (batch, bound) = d.pull();
        assert_eq!(batch.len(), 3, "tie group at 5 must come out whole");
        assert_eq!(bound, 7);
    }

    #[test]
    fn insert_is_decrease_key() {
        let mut d = PullStructure::new(4, 100);
        d.insert(7, 50);
        d.insert(7, 20); // improves
        d.insert(7, 60); // ignored, worse
        assert_eq!(d.len(), 1);
        let (batch, bound) = d.pull();
        assert_eq!(batch, vec![7]);
        assert_eq!(bound, 100);
    }

    #[test]
    fn keys_at_or_above_upper_are_rejected() {
        let mut d = PullStructure::new(4, 10);
        d.insert(1, 10);
        d.insert(2, 11);
        d.insert(3, 9);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn batch_prepend_lands_below_existing() {
        let mut d = PullStructure::new(3, 100);
        d.insert(1, 40);
        d.insert(2, 50);
        d.batch_prepend([(3, 10), (4, 20)]);
        let (batch, _) = d.pull();
        assert_eq!(batch, vec![3, 4, 1]);
    }
}
