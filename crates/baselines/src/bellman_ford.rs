//! Bellman-Ford relaxation, sequential and shared-memory parallel.
//!
//! The "just relax everything until it stops changing" extreme of the SSSP
//! design space: no priority structure at all, so it wastes relaxations on
//! vertices whose distances are not final — the inefficiency delta-stepping's
//! buckets exist to avoid. Experiment F5 quantifies the gap.

use g500_graph::{types::weight_to_bits, Csr, ShortestPaths, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Frontier-based sequential Bellman-Ford (a.k.a. SPFA without the queue
/// tricks): each round relaxes the out-edges of vertices whose distance
/// changed last round.
pub fn bellman_ford(graph: &Csr, root: VertexId) -> ShortestPaths {
    let n = graph.num_vertices();
    let mut sp = ShortestPaths::with_root(n, root);
    let mut frontier = vec![root as usize];
    let mut next = Vec::new();
    let mut in_next = vec![false; n];

    while !frontier.is_empty() {
        next.clear();
        in_next.iter_mut().for_each(|b| *b = false);
        for &u in &frontier {
            let du = sp.dist[u];
            for (v, w) in graph.arcs(u) {
                let v = v as usize;
                let nd = du + w;
                if nd < sp.dist[v] {
                    sp.dist[v] = nd;
                    sp.parent[v] = u as u64;
                    if !in_next[v] {
                        in_next[v] = true;
                        next.push(v);
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    sp
}

/// Shared-memory parallel Bellman-Ford using atomic fetch-min on distance
/// bits (non-negative `f32` orders identically to its bit pattern).
///
/// Rounds are synchronous: all relaxations of round `k` read the distances
/// of round `k − 1` or better; monotonicity of `fetch_min` keeps the
/// *distances* exact regardless of interleaving (the Bellman fixpoint is
/// unique). Parent ties, however, are settled by scheduling — this baseline
/// deliberately keeps the racy atomic formulation that the deterministic
/// two-phase kernels (`g500_sssp::parallel_delta_stepping`) avoid, and is
/// used only where tolerance-based distance comparison suffices.
pub fn bellman_ford_parallel(graph: &Csr, root: VertexId) -> ShortestPaths {
    let n = graph.num_vertices();
    let dist: Vec<AtomicU32> = (0..n)
        .map(|_| AtomicU32::new(weight_to_bits(f32::INFINITY)))
        .collect();
    let parent: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    dist[root as usize].store(weight_to_bits(0.0), Ordering::Relaxed);
    parent[root as usize].store(root, Ordering::Relaxed);

    let mut active: Vec<usize> = vec![root as usize];
    let changed_flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    while !active.is_empty() {
        active.par_iter().for_each(|&u| {
            let du = f32::from_bits(dist[u].load(Ordering::Relaxed));
            for (v, w) in graph.arcs(u) {
                let v = v as usize;
                let nd_bits = weight_to_bits(du + w);
                let prev = dist[v].fetch_min(nd_bits, Ordering::Relaxed);
                if nd_bits < prev {
                    parent[v].store(u as u64, Ordering::Relaxed);
                    changed_flags[v].store(true, Ordering::Relaxed);
                }
            }
        });
        active = (0..n)
            .into_par_iter()
            .filter(|&v| changed_flags[v].swap(false, Ordering::Relaxed))
            .collect();
    }

    ShortestPaths {
        dist: dist
            .into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect(),
        parent: parent.into_iter().map(AtomicU64::into_inner).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use g500_graph::{Directedness, EdgeList};

    fn random_graph(seed: u64) -> Csr {
        let el = g500_gen::simple::erdos_renyi(60, 240, seed);
        Csr::from_edges(60, &el, Directedness::Undirected)
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(seed);
            let exact = dijkstra(&g, 0);
            let bf = bellman_ford(&g, 0);
            assert!(bf.distances_match(&exact, 1e-5), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_dijkstra() {
        for seed in 0..5 {
            let g = random_graph(seed);
            let exact = dijkstra(&g, 0);
            let bf = bellman_ford_parallel(&g, 0);
            assert!(bf.distances_match(&exact, 1e-5), "seed {seed}");
        }
    }

    #[test]
    fn empty_frontier_terminates_immediately() {
        let g = Csr::from_edges(3, &EdgeList::new(), Directedness::Directed);
        let sp = bellman_ford(&g, 1);
        assert_eq!(sp.reached_count(), 1);
        let sp = bellman_ford_parallel(&g, 1);
        assert_eq!(sp.reached_count(), 1);
    }

    #[test]
    fn parent_tree_consistent() {
        let g = random_graph(9);
        let sp = bellman_ford(&g, 0);
        for v in 0..60 {
            if sp.dist[v].is_finite() && v != 0 {
                let p = sp.parent[v] as usize;
                assert!(sp.dist[p].is_finite());
                assert!(sp.dist[p] <= sp.dist[v] + 1e-6);
            }
        }
    }
}
