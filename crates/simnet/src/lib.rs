//! # simnet — a simulated message-passing supercomputer
//!
//! The paper's experiments ran on a real exascale machine over a proprietary
//! MPI/RMA stack. No Rust MPI binding nor 40-million-core machine is
//! available here, so this crate *is* the machine: an in-process SPMD runtime
//! in which every rank is an OS thread with typed mailboxes, and every
//! communication primitive an algorithm is built from (point-to-point sends,
//! barriers, reductions, personalized all-to-all exchanges) is implemented on
//! top of those mailboxes — exactly the layering of a real MPI.
//!
//! ## Why the substitution preserves the paper's claims
//!
//! Scaling behaviour in distributed graph processing is determined by *what
//! is communicated*: the number of messages, the bytes per message, the
//! number of communication rounds (supersteps), and the balance across
//! ranks. All of those are **measured exactly** here because every byte
//! flows through [`RankCtx::send_bytes`]. Only *time* is modeled: each rank
//! carries a virtual clock advanced by a LogGP-style cost model
//! ([`cost::LogGP`]) with a pluggable interconnect topology
//! ([`cost::Topology`]), so "simulated seconds" — and therefore TEPS and
//! scaling curves — emerge from the measured traffic rather than from the
//! host laptop's scheduler.
//!
//! ## Shape of an SPMD program
//!
//! ```
//! use simnet::{Machine, MachineConfig};
//!
//! let report = Machine::new(MachineConfig::with_ranks(4)).run(|ctx| {
//!     // every rank executes this closure
//!     let me = ctx.rank() as u64;
//!     let total = ctx.allreduce_sum(me);
//!     assert_eq!(total, 0 + 1 + 2 + 3);
//!     total
//! });
//! assert_eq!(report.results, vec![6, 6, 6, 6]);
//! assert!(report.sim_time_s > 0.0);
//! ```
#![warn(missing_docs)]

pub mod collectives;
pub mod cost;
pub mod fault;
pub mod machine;
pub mod rank;
pub mod recovery;
pub mod sched;
pub mod stats;
pub mod subcomm;
pub mod trace;
pub mod transport;
pub mod wire;

pub use cost::{ComputeModel, LogGP, Topology};
pub use fault::{CrashPlan, FaultPlan};
pub use machine::{Machine, MachineConfig, SimReport};
pub use rank::{RankCtx, Tag};
pub use recovery::{Checkpoint, FaultEscalation, Recovery};
pub use sched::SchedMode;
pub use stats::NetStats;
pub use subcomm::SubComm;
pub use trace::{Trace, TraceBuf, TraceCode, TraceConfig, TraceEvent, TraceKind, TraceSummary};
pub use transport::TransportError;
pub use wire::Wire;
