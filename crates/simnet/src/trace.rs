//! Virtual-time tracing: structured span/counter events per rank.
//!
//! Every rank owns a private [`TraceBuf`] (lock-free because it is only ever
//! touched by that rank's thread) into which instrumented code records
//! [`TraceEvent`]s stamped with the rank's *virtual* clock. At run end the
//! per-rank buffers are merged deterministically into a [`Trace`], which can
//! be exported as Chrome `trace_event` JSON (loadable in `chrome://tracing`
//! or Perfetto) or condensed into a [`TraceSummary`] table.
//!
//! ## Determinism contract
//!
//! Trace events carry only virtual time and deterministic payloads, never
//! wall-clock or thread identity. Under `SchedMode::Deterministic` the
//! scheduler totally orders delivery and the thread pool has a fixed-chunk
//! contract, so the merged trace — and therefore the rendered summary and
//! the Chrome export — is **byte-identical** across repeated runs and across
//! `G500_THREADS` settings. The golden-trace test suite exploits exactly
//! this property.
//!
//! ## Zero cost when off
//!
//! Recording sites live behind an `Option<Box<TraceBuf>>` in `RankCtx`; when
//! tracing is disabled the option is `None` and every instrumentation call
//! is a branch on a `None` discriminant. Tracing never advances the virtual
//! clock and never touches [`crate::NetStats`], so enabling it cannot change
//! simulation results.

use crate::stats::json_f64;

/// Whether tracing is enabled for a run. `Copy` so it can live inside
/// [`crate::MachineConfig`]; output paths are handled at the CLI layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record trace events when true.
    pub enabled: bool,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig { enabled: false }
    }

    /// Tracing enabled.
    pub fn on() -> Self {
        TraceConfig { enabled: true }
    }
}

/// Event flavor: span delimiters or a point counter sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// Span opening edge.
    Begin = 0,
    /// Span closing edge (matches the innermost open `Begin` of same code).
    End = 1,
    /// Instantaneous counter sample.
    Count = 2,
}

impl TraceKind {
    fn from_u8(x: u8) -> Option<TraceKind> {
        match x {
            0 => Some(TraceKind::Begin),
            1 => Some(TraceKind::End),
            2 => Some(TraceKind::Count),
            _ => None,
        }
    }
}

/// What a trace event describes. Span codes delimit regions of virtual
/// time; counter codes carry a value in `a` (u64, or f64 bits for the
/// `*Compute`/`*Comm` seconds counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum TraceCode {
    /// Graph construction + distribution (span; driver level).
    Build = 0,
    /// One SSSP/BFS root run, kernel + gather (span; `a` = root index).
    RootRun = 1,
    /// One delta-stepping bucket (span; `a` = bucket index).
    Bucket = 2,
    /// One superstep / relaxation round (span; `b`: 0 light, 1 heavy,
    /// 2 fused tail).
    Superstep = 3,
    /// One exchange_updates call (span; `a` = records offered).
    Exchange = 4,
    /// One parallel task wave on the pool (span; `a` = item count).
    TaskWave = 5,
    /// Reduction to root (collective span).
    ReduceToRoot = 6,
    /// Broadcast from root (collective span).
    Bcast = 7,
    /// Allreduce (collective span).
    Allreduce = 8,
    /// Barrier (collective span).
    Barrier = 9,
    /// Variable allgather (collective span).
    Allgatherv = 10,
    /// Personalized all-to-all (collective span).
    Alltoallv = 11,
    /// Variable gather to root (collective span).
    GatherToRoot = 12,
    /// Exclusive prefix scan (collective span).
    Exscan = 13,
    /// Reduce-scatter (collective span).
    ReduceScatter = 14,
    /// One admission-windowed query batch through the serving engine
    /// (span; `a` = batch ordinal, `b` = lane width).
    QueryBatch = 15,
    /// One superstep-boundary checkpoint write (span; `a` = snapshot bytes,
    /// `b` = checkpoint epoch).
    CheckpointWrite = 16,
    /// One rollback to the last checkpoint after an agreed crash verdict
    /// (span; `a` = crashed-rank count, `b` = checkpoint epoch restored to).
    Restore = 17,
    /// Re-execution of supersteps lost to a rollback, from the restored
    /// epoch until the pre-crash epoch is re-reached (span; `a` = restored
    /// epoch, `b` = epoch being replayed toward).
    Replay = 18,
    /// Edge relaxations performed this superstep (counter).
    Relaxations = 100,
    /// Vertices settled so far in the current bucket (counter).
    Settled = 101,
    /// Update records sent by one exchange (counter).
    UpdatesSent = 102,
    /// Update records received by one exchange (counter).
    UpdatesReceived = 103,
    /// One reliable-transport retransmission (counter; `a` = frame seq,
    /// `b` = attempt).
    Retransmit = 104,
    /// One retransmit-timer expiry (counter; `a` = frame seq,
    /// `b` = attempt).
    Timeout = 105,
    /// Virtual compute seconds accrued during the superstep just ended
    /// (counter; `a` = f64 bits).
    SuperstepCompute = 106,
    /// Virtual communication seconds accrued during the superstep just
    /// ended (counter; `a` = f64 bits).
    SuperstepComm = 107,
    /// Global frontier size of a bucket (counter; `a` = size,
    /// `b` = bucket index).
    BucketFrontier = 108,
    /// Virtual compute seconds accrued over a bucket (counter;
    /// `a` = f64 bits, `b` = bucket index).
    BucketCompute = 109,
    /// Virtual communication seconds accrued over a bucket (counter;
    /// `a` = f64 bits, `b` = bucket index).
    BucketComm = 110,
    /// One query admitted into a batch (counter; `a` = query ordinal in
    /// the stream, `b` = 0 lane run / 1 cache hit).
    QueryAdmitted = 111,
    /// One point-to-point lane retired early (counter; `a` = query
    /// ordinal, `b` = bucket epoch at retirement).
    QueryRetired = 112,
    /// One query shed by the serving engine after recovery failed or a
    /// deadline blew (counter; `a` = query ordinal, `b` = 0 kernel
    /// failure / 1 deadline).
    QueryShed = 113,
}

/// All codes, in declaration order (used by decoding and the summary).
const ALL_CODES: &[TraceCode] = &[
    TraceCode::Build,
    TraceCode::RootRun,
    TraceCode::Bucket,
    TraceCode::Superstep,
    TraceCode::Exchange,
    TraceCode::TaskWave,
    TraceCode::ReduceToRoot,
    TraceCode::Bcast,
    TraceCode::Allreduce,
    TraceCode::Barrier,
    TraceCode::Allgatherv,
    TraceCode::Alltoallv,
    TraceCode::GatherToRoot,
    TraceCode::Exscan,
    TraceCode::ReduceScatter,
    TraceCode::QueryBatch,
    TraceCode::CheckpointWrite,
    TraceCode::Restore,
    TraceCode::Replay,
    TraceCode::Relaxations,
    TraceCode::Settled,
    TraceCode::UpdatesSent,
    TraceCode::UpdatesReceived,
    TraceCode::Retransmit,
    TraceCode::Timeout,
    TraceCode::SuperstepCompute,
    TraceCode::SuperstepComm,
    TraceCode::BucketFrontier,
    TraceCode::BucketCompute,
    TraceCode::BucketComm,
    TraceCode::QueryAdmitted,
    TraceCode::QueryRetired,
    TraceCode::QueryShed,
];

impl TraceCode {
    /// Stable kebab-case name (used in Chrome exports and summaries).
    pub fn name(self) -> &'static str {
        match self {
            TraceCode::Build => "build",
            TraceCode::RootRun => "root-run",
            TraceCode::Bucket => "bucket",
            TraceCode::Superstep => "superstep",
            TraceCode::Exchange => "exchange",
            TraceCode::TaskWave => "task-wave",
            TraceCode::ReduceToRoot => "reduce-to-root",
            TraceCode::Bcast => "bcast",
            TraceCode::Allreduce => "allreduce",
            TraceCode::Barrier => "barrier",
            TraceCode::Allgatherv => "allgatherv",
            TraceCode::Alltoallv => "alltoallv",
            TraceCode::GatherToRoot => "gather-to-root",
            TraceCode::Exscan => "exscan",
            TraceCode::ReduceScatter => "reduce-scatter",
            TraceCode::QueryBatch => "query-batch",
            TraceCode::CheckpointWrite => "checkpoint-write",
            TraceCode::Restore => "restore",
            TraceCode::Replay => "replay",
            TraceCode::Relaxations => "relaxations",
            TraceCode::Settled => "settled",
            TraceCode::UpdatesSent => "updates-sent",
            TraceCode::UpdatesReceived => "updates-received",
            TraceCode::Retransmit => "retransmit",
            TraceCode::Timeout => "timeout",
            TraceCode::SuperstepCompute => "superstep-compute",
            TraceCode::SuperstepComm => "superstep-comm",
            TraceCode::BucketFrontier => "bucket-frontier",
            TraceCode::BucketCompute => "bucket-compute",
            TraceCode::BucketComm => "bucket-comm",
            TraceCode::QueryAdmitted => "query-admitted",
            TraceCode::QueryRetired => "query-retired",
            TraceCode::QueryShed => "query-shed",
        }
    }

    /// Decode from the wire representation.
    pub fn from_u16(x: u16) -> Option<TraceCode> {
        ALL_CODES.iter().copied().find(|c| *c as u16 == x)
    }

    /// True for span codes (delimited by Begin/End pairs).
    pub fn is_span(self) -> bool {
        (self as u16) < 100
    }

    /// True for collective-operation span codes.
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            TraceCode::ReduceToRoot
                | TraceCode::Bcast
                | TraceCode::Allreduce
                | TraceCode::Barrier
                | TraceCode::Allgatherv
                | TraceCode::Alltoallv
                | TraceCode::GatherToRoot
                | TraceCode::Exscan
                | TraceCode::ReduceScatter
        )
    }
}

/// One recorded event: a span edge or counter sample at a virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time in seconds (the recording rank's clock).
    pub t_s: f64,
    /// Span edge or counter sample.
    pub kind: TraceKind,
    /// What the event describes.
    pub code: TraceCode,
    /// First payload word (counter value, f64 bits for seconds counters).
    pub a: u64,
    /// Second payload word (bucket index, attempt number, flavor, …).
    pub b: u64,
}

/// Encoded size of one event: kind u8 | code u16 | t bits u64 | a u64 | b u64.
pub const EVENT_WIRE_BYTES: usize = 1 + 2 + 8 + 8 + 8;

/// Why decoding a trace event stream failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// Input ended mid-record.
    Truncated,
    /// Unknown [`TraceKind`] discriminant.
    BadKind(u8),
    /// Unknown [`TraceCode`] discriminant.
    BadCode(u16),
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::Truncated => write!(f, "trace stream truncated"),
            TraceDecodeError::BadKind(k) => write!(f, "bad trace kind {k}"),
            TraceDecodeError::BadCode(c) => write!(f, "bad trace code {c}"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

impl TraceEvent {
    /// Append the fixed-width wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.kind as u8);
        out.extend_from_slice(&(self.code as u16).to_le_bytes());
        out.extend_from_slice(&self.t_s.to_bits().to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }

    /// Decode one event from the front of `buf`; returns the event and the
    /// number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(TraceEvent, usize), TraceDecodeError> {
        if buf.len() < EVENT_WIRE_BYTES {
            return Err(TraceDecodeError::Truncated);
        }
        let kind = TraceKind::from_u8(buf[0]).ok_or(TraceDecodeError::BadKind(buf[0]))?;
        let code_raw = u16::from_le_bytes([buf[1], buf[2]]);
        let code = TraceCode::from_u16(code_raw).ok_or(TraceDecodeError::BadCode(code_raw))?;
        let mut w = [0u8; 8];
        w.copy_from_slice(&buf[3..11]);
        let t_s = f64::from_bits(u64::from_le_bytes(w));
        w.copy_from_slice(&buf[11..19]);
        let a = u64::from_le_bytes(w);
        w.copy_from_slice(&buf[19..27]);
        let b = u64::from_le_bytes(w);
        Ok((
            TraceEvent {
                t_s,
                kind,
                code,
                a,
                b,
            },
            EVENT_WIRE_BYTES,
        ))
    }

    /// Interpret `a` as f64 bits (seconds counters).
    pub fn value_f64(&self) -> f64 {
        f64::from_bits(self.a)
    }
}

/// Per-rank event buffer. Owned by exactly one rank thread, so recording
/// is lock-free; buffers are handed back to the machine at rank exit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceBuf {
    /// Owning rank.
    pub rank: u32,
    /// Events in recording order (per-rank virtual time is monotone).
    pub events: Vec<TraceEvent>,
}

impl TraceBuf {
    /// Empty buffer for `rank`.
    pub fn new(rank: usize) -> TraceBuf {
        TraceBuf {
            rank: rank as u32,
            events: Vec::new(),
        }
    }

    /// Record one event at virtual time `t_s`.
    pub fn record(&mut self, t_s: f64, kind: TraceKind, code: TraceCode, a: u64, b: u64) {
        self.events.push(TraceEvent {
            t_s,
            kind,
            code,
            a,
            b,
        });
    }

    /// Wire encoding: rank u32 | count u64 | events.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.events.len() * EVENT_WIRE_BYTES);
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for ev in &self.events {
            ev.encode(&mut out);
        }
        out
    }

    /// Decode a buffer produced by [`TraceBuf::encode`].
    pub fn decode(buf: &[u8]) -> Result<TraceBuf, TraceDecodeError> {
        if buf.len() < 12 {
            return Err(TraceDecodeError::Truncated);
        }
        let rank = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let mut w = [0u8; 8];
        w.copy_from_slice(&buf[4..12]);
        let count = u64::from_le_bytes(w) as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        let mut off = 12;
        for _ in 0..count {
            let (ev, used) = TraceEvent::decode(&buf[off..])?;
            events.push(ev);
            off += used;
        }
        Ok(TraceBuf { rank, events })
    }
}

/// A merged, totally ordered trace across all ranks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Number of ranks that contributed buffers.
    pub ranks: u32,
    /// `(rank, event)` pairs ordered by `(virtual time, rank, per-rank
    /// sequence)` — a deterministic total order because virtual times are
    /// non-negative and finite and each rank's clock is monotone.
    pub events: Vec<(u32, TraceEvent)>,
}

impl Trace {
    /// Deterministically merge per-rank buffers.
    pub fn merge(bufs: Vec<TraceBuf>) -> Trace {
        let ranks = bufs.len() as u32;
        let mut tagged: Vec<(u64, u32, u64, TraceEvent)> = Vec::new();
        for buf in bufs {
            for (idx, ev) in buf.events.into_iter().enumerate() {
                tagged.push((ev.t_s.to_bits(), buf.rank, idx as u64, ev));
            }
        }
        // Non-negative finite f64 bit patterns order the same as the values,
        // so sorting on bits gives the numeric order without NaN hazards.
        tagged.sort_unstable_by_key(|&(t, r, i, _)| (t, r, i));
        Trace {
            ranks,
            events: tagged.into_iter().map(|(_, r, _, ev)| (r, ev)).collect(),
        }
    }

    /// Canonical byte serialization (used by byte-identity tests):
    /// ranks u32 | count u64 | (rank u32 + event) per event.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.events.len() * (4 + EVENT_WIRE_BYTES));
        out.extend_from_slice(&self.ranks.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for (rank, ev) in &self.events {
            out.extend_from_slice(&rank.to_le_bytes());
            ev.encode(&mut out);
        }
        out
    }

    /// Export as Chrome `trace_event` JSON (object format, `traceEvents`
    /// array). Spans map to `ph:"B"`/`ph:"E"`, counters to thread-scoped
    /// instants (`ph:"i"`, `s:"t"`). `pid` is 0, `tid` is the rank, and
    /// `ts` is virtual microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for rank in 0..self.ranks {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            ));
        }
        for (rank, ev) in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = json_f64(ev.t_s * 1e6);
            let name = ev.code.name();
            match ev.kind {
                TraceKind::Begin => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"B\",\"pid\":0,\"tid\":{rank},\"ts\":{ts},\
                     \"args\":{{\"a\":{},\"b\":{}}}}}",
                    ev.a, ev.b
                )),
                TraceKind::End => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":0,\"tid\":{rank},\"ts\":{ts}}}"
                )),
                TraceKind::Count => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\
                     \"ts\":{ts},\"args\":{{\"a\":{},\"b\":{}}}}}",
                    ev.a, ev.b
                )),
            }
        }
        out.push_str("]}");
        out
    }

    /// Condense the trace into the summary tables.
    pub fn summary(&self) -> TraceSummary {
        summarize(self)
    }
}

/// Aggregate row for one span code.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRow {
    /// Span code.
    pub code: TraceCode,
    /// Completed Begin/End pairs across all ranks.
    pub count: u64,
    /// Total inclusive virtual seconds across all ranks.
    pub total_s: f64,
}

/// Aggregate row for one superstep (matched across ranks by per-rank
/// occurrence order, which is identical on every rank).
#[derive(Clone, Debug, PartialEq)]
pub struct SuperstepRow {
    /// Occurrence index of the superstep within the run.
    pub index: u64,
    /// Flavor: 0 light, 1 heavy, 2 fused tail.
    pub flavor: u64,
    /// Maximum span duration over ranks (the superstep's critical path).
    pub span_s: f64,
    /// Summed per-rank compute seconds within the superstep.
    pub compute_s: f64,
    /// Summed per-rank communication seconds within the superstep.
    pub comm_s: f64,
    /// Summed per-rank idle remainder `max(0, span − compute − comm)`.
    pub wait_s: f64,
}

/// Aggregate row for one delta-stepping bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct BucketRow {
    /// Bucket index.
    pub bucket: u64,
    /// Global frontier size (max over ranks — the value is an allreduced
    /// global, so every rank reports the same number).
    pub frontier: u64,
    /// Summed per-rank compute seconds in the bucket.
    pub compute_s: f64,
    /// Summed per-rank communication seconds in the bucket.
    pub comm_s: f64,
}

/// Compact roll-up of a merged trace: per-superstep compute/comm/wait
/// split, per-bucket totals, span table, and top collectives.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total merged events.
    pub events: u64,
    /// Ranks that contributed.
    pub ranks: u32,
    /// Per-span-code aggregate rows (declaration order, only codes seen).
    pub spans: Vec<SpanRow>,
    /// Matched superstep rows in run order.
    pub supersteps: Vec<SuperstepRow>,
    /// Bucket rows in bucket order.
    pub buckets: Vec<BucketRow>,
    /// Total retransmit events.
    pub retransmits: u64,
    /// Total timeout events.
    pub timeouts: u64,
    /// Top collectives by total inclusive virtual time (at most 5).
    pub top_collectives: Vec<SpanRow>,
}

fn summarize(trace: &Trace) -> TraceSummary {
    use std::collections::BTreeMap;
    let nranks = trace.ranks as usize;
    // Per-rank event streams in per-rank order (merge preserved it).
    let mut per_rank: Vec<Vec<&TraceEvent>> = vec![Vec::new(); nranks.max(1)];
    for (rank, ev) in &trace.events {
        let r = *rank as usize;
        if r < per_rank.len() {
            per_rank[r].push(ev);
        }
    }

    // Span table: per (rank, code) begin stacks -> inclusive totals.
    let mut span_count: BTreeMap<TraceCode, u64> = BTreeMap::new();
    let mut span_total: BTreeMap<TraceCode, f64> = BTreeMap::new();
    // Per-rank superstep occurrences: (duration, flavor) in order.
    let mut steps: Vec<Vec<(f64, u64)>> = vec![Vec::new(); nranks.max(1)];
    // Per-rank superstep compute/comm samples in order.
    let mut step_compute: Vec<Vec<f64>> = vec![Vec::new(); nranks.max(1)];
    let mut step_comm: Vec<Vec<f64>> = vec![Vec::new(); nranks.max(1)];
    // Bucket accumulators keyed by bucket index.
    let mut bucket_frontier: BTreeMap<u64, u64> = BTreeMap::new();
    let mut bucket_compute: BTreeMap<u64, f64> = BTreeMap::new();
    let mut bucket_comm: BTreeMap<u64, f64> = BTreeMap::new();
    let mut retransmits = 0u64;
    let mut timeouts = 0u64;

    for (r, evs) in per_rank.iter().enumerate() {
        let mut stacks: BTreeMap<TraceCode, Vec<f64>> = BTreeMap::new();
        for ev in evs {
            match ev.kind {
                TraceKind::Begin => stacks.entry(ev.code).or_default().push(ev.t_s),
                TraceKind::End => {
                    if let Some(t0) = stacks.entry(ev.code).or_default().pop() {
                        let dur = (ev.t_s - t0).max(0.0);
                        *span_count.entry(ev.code).or_insert(0) += 1;
                        *span_total.entry(ev.code).or_insert(0.0) += dur;
                        if ev.code == TraceCode::Superstep {
                            steps[r].push((dur, ev.b));
                        }
                    }
                }
                TraceKind::Count => match ev.code {
                    TraceCode::Retransmit => retransmits += 1,
                    TraceCode::Timeout => timeouts += 1,
                    TraceCode::SuperstepCompute => step_compute[r].push(ev.value_f64()),
                    TraceCode::SuperstepComm => step_comm[r].push(ev.value_f64()),
                    TraceCode::BucketFrontier => {
                        let e = bucket_frontier.entry(ev.b).or_insert(0);
                        *e = (*e).max(ev.a);
                    }
                    TraceCode::BucketCompute => {
                        *bucket_compute.entry(ev.b).or_insert(0.0) += ev.value_f64();
                    }
                    TraceCode::BucketComm => {
                        *bucket_comm.entry(ev.b).or_insert(0.0) += ev.value_f64();
                    }
                    _ => {}
                },
            }
        }
    }

    let spans: Vec<SpanRow> = ALL_CODES
        .iter()
        .filter_map(|&code| {
            span_count.get(&code).map(|&count| SpanRow {
                code,
                count,
                total_s: *span_total.get(&code).unwrap_or(&0.0),
            })
        })
        .collect();

    // Superstep rows: every rank executes the same superstep sequence, so
    // occurrence i on each rank is the same global superstep.
    let nsteps = steps.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut supersteps = Vec::with_capacity(nsteps);
    for i in 0..nsteps {
        let mut span_s = 0.0f64;
        let mut flavor = 0u64;
        let mut compute_s = 0.0f64;
        let mut comm_s = 0.0f64;
        let mut wait_s = 0.0f64;
        for r in 0..nranks.max(1) {
            if let Some(&(dur, fl)) = steps[r].get(i) {
                span_s = span_s.max(dur);
                flavor = fl;
                let comp = step_compute[r].get(i).copied().unwrap_or(0.0);
                let comm = step_comm[r].get(i).copied().unwrap_or(0.0);
                compute_s += comp;
                comm_s += comm;
                wait_s += (dur - comp - comm).max(0.0);
            }
        }
        supersteps.push(SuperstepRow {
            index: i as u64,
            flavor,
            span_s,
            compute_s,
            comm_s,
            wait_s,
        });
    }

    let buckets: Vec<BucketRow> = bucket_frontier
        .keys()
        .chain(bucket_compute.keys())
        .chain(bucket_comm.keys())
        .copied()
        .collect::<std::collections::BTreeSet<u64>>()
        .into_iter()
        .map(|bucket| BucketRow {
            bucket,
            frontier: bucket_frontier.get(&bucket).copied().unwrap_or(0),
            compute_s: bucket_compute.get(&bucket).copied().unwrap_or(0.0),
            comm_s: bucket_comm.get(&bucket).copied().unwrap_or(0.0),
        })
        .collect();

    let mut top_collectives: Vec<SpanRow> = spans
        .iter()
        .filter(|row| row.code.is_collective())
        .cloned()
        .collect();
    top_collectives.sort_by(|x, y| {
        y.total_s
            .total_cmp(&x.total_s)
            .then_with(|| (x.code as u16).cmp(&(y.code as u16)))
    });
    top_collectives.truncate(5);

    TraceSummary {
        events: trace.events.len() as u64,
        ranks: trace.ranks,
        spans,
        supersteps,
        buckets,
        retransmits,
        timeouts,
        top_collectives,
    }
}

impl TraceSummary {
    /// Render as an aligned text block (virtual-time only, so the output is
    /// identical at any thread count — the golden-trace files store exactly
    /// this text).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("trace summary\n");
        s.push_str(&format!("  events            : {}\n", self.events));
        s.push_str(&format!("  ranks             : {}\n", self.ranks));
        s.push_str(&format!(
            "  retransmits       : {}   timeouts: {}\n",
            self.retransmits, self.timeouts
        ));
        if !self.spans.is_empty() {
            s.push_str("  spans (count, total virtual s):\n");
            for row in &self.spans {
                s.push_str(&format!(
                    "    {:<18} count={:<8} total_s={}\n",
                    row.code.name(),
                    row.count,
                    json_f64(row.total_s)
                ));
            }
        }
        if !self.supersteps.is_empty() {
            s.push_str("  supersteps (flavor 0=light 1=heavy 2=tail):\n");
            let head = 8.min(self.supersteps.len());
            for row in &self.supersteps[..head] {
                s.push_str(&format!(
                    "    step {:<4} flavor={} span_s={} compute_s={} comm_s={} wait_s={}\n",
                    row.index,
                    row.flavor,
                    json_f64(row.span_s),
                    json_f64(row.compute_s),
                    json_f64(row.comm_s),
                    json_f64(row.wait_s)
                ));
            }
            if self.supersteps.len() > head {
                let rest = &self.supersteps[head..];
                let span: f64 = rest.iter().map(|r| r.span_s).sum();
                let comp: f64 = rest.iter().map(|r| r.compute_s).sum();
                let comm: f64 = rest.iter().map(|r| r.comm_s).sum();
                let wait: f64 = rest.iter().map(|r| r.wait_s).sum();
                s.push_str(&format!(
                    "    +{} more: span_s={} compute_s={} comm_s={} wait_s={}\n",
                    rest.len(),
                    json_f64(span),
                    json_f64(comp),
                    json_f64(comm),
                    json_f64(wait)
                ));
            }
        }
        if !self.buckets.is_empty() {
            s.push_str("  buckets:\n");
            let head = 12.min(self.buckets.len());
            for row in &self.buckets[..head] {
                s.push_str(&format!(
                    "    bucket {:<4} frontier={:<8} compute_s={} comm_s={}\n",
                    row.bucket,
                    row.frontier,
                    json_f64(row.compute_s),
                    json_f64(row.comm_s)
                ));
            }
            if self.buckets.len() > head {
                let rest = &self.buckets[head..];
                let fr: u64 = rest.iter().map(|r| r.frontier).sum();
                let comp: f64 = rest.iter().map(|r| r.compute_s).sum();
                let comm: f64 = rest.iter().map(|r| r.comm_s).sum();
                s.push_str(&format!(
                    "    +{} more: frontier={} compute_s={} comm_s={}\n",
                    rest.len(),
                    fr,
                    json_f64(comp),
                    json_f64(comm)
                ));
            }
        }
        if !self.top_collectives.is_empty() {
            s.push_str("  top collectives by inclusive virtual time:\n");
            for row in &self.top_collectives {
                s.push_str(&format!(
                    "    {:<18} count={:<8} total_s={}\n",
                    row.code.name(),
                    row.count,
                    json_f64(row.total_s)
                ));
            }
        }
        s
    }

    /// Single-line JSON object (hand-rolled, matching the workspace style).
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_s\":{}}}",
                    r.code.name(),
                    r.count,
                    json_f64(r.total_s)
                )
            })
            .collect();
        let steps: Vec<String> = self
            .supersteps
            .iter()
            .map(|r| {
                format!(
                    "{{\"index\":{},\"flavor\":{},\"span_s\":{},\"compute_s\":{},\
                     \"comm_s\":{},\"wait_s\":{}}}",
                    r.index,
                    r.flavor,
                    json_f64(r.span_s),
                    json_f64(r.compute_s),
                    json_f64(r.comm_s),
                    json_f64(r.wait_s)
                )
            })
            .collect();
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .map(|r| {
                format!(
                    "{{\"bucket\":{},\"frontier\":{},\"compute_s\":{},\"comm_s\":{}}}",
                    r.bucket,
                    r.frontier,
                    json_f64(r.compute_s),
                    json_f64(r.comm_s)
                )
            })
            .collect();
        let top: Vec<String> = self
            .top_collectives
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_s\":{}}}",
                    r.code.name(),
                    r.count,
                    json_f64(r.total_s)
                )
            })
            .collect();
        format!(
            "{{\"events\":{},\"ranks\":{},\"retransmits\":{},\"timeouts\":{},\
             \"spans\":[{}],\"supersteps\":[{}],\"buckets\":[{}],\"top_collectives\":[{}]}}",
            self.events,
            self.ranks,
            self.retransmits,
            self.timeouts,
            spans.join(","),
            steps.join(","),
            buckets.join(","),
            top.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: TraceKind, code: TraceCode, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            t_s: t,
            kind,
            code,
            a,
            b,
        }
    }

    #[test]
    fn event_codec_round_trip() {
        let e = ev(1.5, TraceKind::Begin, TraceCode::Superstep, 42, 7);
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), EVENT_WIRE_BYTES);
        let (d, used) = TraceEvent::decode(&buf).unwrap();
        assert_eq!(used, EVENT_WIRE_BYTES);
        assert_eq!(d, e);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            TraceEvent::decode(&[0u8; 5]),
            Err(TraceDecodeError::Truncated)
        );
        let mut buf = Vec::new();
        ev(0.0, TraceKind::Count, TraceCode::Relaxations, 1, 0).encode(&mut buf);
        buf[0] = 9;
        assert_eq!(TraceEvent::decode(&buf), Err(TraceDecodeError::BadKind(9)));
        buf[0] = 0;
        buf[1] = 0xff;
        buf[2] = 0xff;
        assert_eq!(
            TraceEvent::decode(&buf),
            Err(TraceDecodeError::BadCode(0xffff))
        );
    }

    #[test]
    fn buf_codec_round_trip() {
        let mut b = TraceBuf::new(3);
        b.record(0.0, TraceKind::Begin, TraceCode::Bucket, 0, 0);
        b.record(1.0, TraceKind::Count, TraceCode::Relaxations, 10, 0);
        b.record(2.0, TraceKind::End, TraceCode::Bucket, 0, 0);
        let enc = b.encode();
        assert_eq!(TraceBuf::decode(&enc).unwrap(), b);
    }

    #[test]
    fn merge_orders_by_time_then_rank() {
        let mut b0 = TraceBuf::new(0);
        b0.record(2.0, TraceKind::Count, TraceCode::Relaxations, 1, 0);
        let mut b1 = TraceBuf::new(1);
        b1.record(1.0, TraceKind::Count, TraceCode::Relaxations, 2, 0);
        b1.record(2.0, TraceKind::Count, TraceCode::Relaxations, 3, 0);
        let t = Trace::merge(vec![b0, b1]);
        assert_eq!(t.ranks, 2);
        let order: Vec<(u32, u64)> = t.events.iter().map(|(r, e)| (*r, e.a)).collect();
        assert_eq!(order, vec![(1, 2), (0, 1), (1, 3)]);
    }

    #[test]
    fn summary_matches_simple_trace() {
        let mut b = TraceBuf::new(0);
        b.record(0.0, TraceKind::Begin, TraceCode::Superstep, 0, 0);
        b.record(1.0, TraceKind::End, TraceCode::Superstep, 0, 0);
        b.record(
            1.0,
            TraceKind::Count,
            TraceCode::SuperstepCompute,
            0.25f64.to_bits(),
            0,
        );
        b.record(
            1.0,
            TraceKind::Count,
            TraceCode::SuperstepComm,
            0.5f64.to_bits(),
            0,
        );
        b.record(1.0, TraceKind::Count, TraceCode::BucketFrontier, 17, 4);
        b.record(1.5, TraceKind::Count, TraceCode::Timeout, 0, 1);
        let sum = Trace::merge(vec![b]).summary();
        assert_eq!(sum.supersteps.len(), 1);
        let row = &sum.supersteps[0];
        assert!((row.span_s - 1.0).abs() < 1e-12);
        assert!((row.compute_s - 0.25).abs() < 1e-12);
        assert!((row.comm_s - 0.5).abs() < 1e-12);
        assert!((row.wait_s - 0.25).abs() < 1e-12);
        assert_eq!(sum.buckets.len(), 1);
        assert_eq!(sum.buckets[0].bucket, 4);
        assert_eq!(sum.buckets[0].frontier, 17);
        assert_eq!(sum.timeouts, 1);
        assert_eq!(sum.retransmits, 0);
    }

    #[test]
    fn chrome_json_has_span_edges() {
        let mut b = TraceBuf::new(0);
        b.record(0.0, TraceKind::Begin, TraceCode::Allreduce, 1, 0);
        b.record(0.001, TraceKind::End, TraceCode::Allreduce, 1, 0);
        let j = Trace::merge(vec![b]).to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.contains("\"ph\":\"B\""), "{j}");
        assert!(j.contains("\"ph\":\"E\""), "{j}");
        assert!(j.contains("\"name\":\"allreduce\""), "{j}");
        assert!(j.contains("\"ts\":1000"), "{j}");
        assert!(j.ends_with("]}"), "{j}");
    }

    #[test]
    fn to_bytes_is_stable_across_rebuilds() {
        let mut b0 = TraceBuf::new(0);
        b0.record(0.5, TraceKind::Count, TraceCode::Settled, 9, 0);
        let t1 = Trace::merge(vec![b0.clone()]);
        let t2 = Trace::merge(vec![b0]);
        assert_eq!(t1.to_bytes(), t2.to_bytes());
    }
}
