//! The process-global work-sharing thread pool.
//!
//! One pool serves the whole process: simnet spawns one OS thread per
//! simulated rank, and if each rank owned a private pool the host would be
//! oversubscribed `ranks × threads`-fold. Instead every rank submits its
//! parallel regions to this single shared pool.
//!
//! ## Execution model
//!
//! A parallel region is a *task*: `nchunks` independent chunk indices plus a
//! `Fn(usize)` body. The submitting thread pushes the task onto a global
//! registry, then immediately starts claiming chunks of its own task; idle
//! workers scan the registry and claim chunks of any runnable task. Chunk
//! claiming is a single `fetch_update` on the task's `next` counter, so chunks
//! are distributed dynamically (a stalled worker never blocks others from
//! stealing the remaining chunks) while *which* chunk exists is fixed up
//! front — chunk boundaries never depend on the number of threads, which is
//! what keeps results bitwise reproducible (see the crate docs).
//!
//! The submitter blocks until every chunk of its task has completed, which is
//! what makes the lifetime-erased body pointer sound: the `Fn` lives on the
//! submitter's stack and outlives every dereference.
//!
//! ## Nested parallelism and deadlock freedom
//!
//! A chunk body may itself open a parallel region (nested `join`, sorts
//! inside a parallel map, ...). Waits always form a tree: a thread only
//! blocks after claiming every remaining chunk of *its own* task, so by then
//! each outstanding chunk is being executed by some thread, and a thread
//! executing a chunk only blocks as the submitter of a *deeper* task (for
//! which the same argument applies). The deepest execution in the tree is
//! never blocked, so the system always makes progress.
//!
//! ## Panics
//!
//! The first panic from any chunk is captured; remaining chunks of the task
//! are skipped (claimed and immediately retired), and the payload is
//! re-thrown on the submitting thread once the task drains.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One in-flight parallel region.
struct Task {
    /// Lifetime-erased pointer to the chunk body on the submitter's stack.
    /// Valid until the submitter returns from [`Pool::run`], which cannot
    /// happen before `pending` reaches zero.
    func: *const (dyn Fn(usize) + Sync),
    nchunks: usize,
    /// Next chunk index to claim; saturates at `nchunks`.
    next: AtomicUsize,
    /// Chunks not yet retired. The task is complete when this hits zero.
    pending: AtomicUsize,
    /// Set on first panic; later chunks are skipped.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `func` is only dereferenced while the submitter provably waits
// (see module docs); all other fields are Sync primitives.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Claim and retire one chunk. Returns false once no chunk is claimable.
    fn claim_and_run_one(&self) -> bool {
        let claimed = self
            .next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.nchunks).then_some(n + 1)
            });
        let Ok(i) = claimed else { return false };
        if !self.poisoned.load(Ordering::SeqCst) {
            // SAFETY: the submitter cannot return (and invalidate `func`)
            // while this chunk is claimed but not retired.
            let body = unsafe { &*self.func };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(i))) {
                self.poisoned.store(true, Ordering::SeqCst);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut done = self.done.lock().unwrap();
            *done = true;
            self.done_cv.notify_all();
        }
        true
    }
}

struct Shared {
    /// Registry of in-flight tasks. Small (one entry per concurrently open
    /// parallel region), so a linear scan under the lock is cheap.
    tasks: Mutex<Vec<Arc<Task>>>,
    work_cv: Condvar,
}

pub(crate) struct Pool {
    shared: Arc<Shared>,
    nthreads: usize,
}

impl Pool {
    fn new(nthreads: usize) -> Pool {
        let shared = Arc::new(Shared {
            tasks: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
        });
        // The submitter of each task participates in executing it, so
        // `nthreads` total parallelism needs `nthreads - 1` workers; with
        // one thread the pool runs everything inline on the caller.
        for i in 1..nthreads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("g500-pool-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawning pool worker");
        }
        Pool { shared, nthreads }
    }

    /// Execute `f(0..nchunks)` across the pool; returns when every chunk has
    /// retired. Re-throws the first chunk panic on this thread.
    fn run(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
        // Erase the borrow lifetime; soundness argued in the module docs.
        let func: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let task = Arc::new(Task {
            func,
            nchunks,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(nchunks),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        self.shared.tasks.lock().unwrap().push(Arc::clone(&task));
        self.shared.work_cv.notify_all();

        while task.claim_and_run_one() {}
        let mut done = task.done.lock().unwrap();
        while !*done {
            done = task.done_cv.wait(done).unwrap();
        }
        drop(done);

        let mut q = self.shared.tasks.lock().unwrap();
        if let Some(pos) = q.iter().position(|t| Arc::ptr_eq(t, &task)) {
            q.remove(pos);
        }
        drop(q);

        let payload = task.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.tasks.lock().unwrap();
            loop {
                if let Some(t) = q.iter().find(|t| t.next.load(Ordering::SeqCst) < t.nchunks) {
                    break Arc::clone(t);
                }
                q = shared.work_cv.wait(q).unwrap();
            }
        };
        while task.claim_and_run_one() {}
    }
}

/// Thread count requested via [`configure_threads`] before first pool use;
/// 0 means "not configured".
static REQUESTED: AtomicUsize = AtomicUsize::new(0);
static POOL: OnceLock<Pool> = OnceLock::new();

fn resolve_threads() -> usize {
    let requested = REQUESTED.load(Ordering::SeqCst);
    if requested > 0 {
        return requested;
    }
    if let Ok(s) = std::env::var("G500_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::new(resolve_threads()))
}

/// Request a pool size, overriding `G500_THREADS` and the hardware default.
/// Must be called before the first parallel operation; returns `true` if the
/// request took effect (the pool was not yet started), `false` if the pool
/// is already running at its original size.
pub fn configure_threads(n: usize) -> bool {
    REQUESTED.store(n.max(1), Ordering::SeqCst);
    POOL.get().is_none()
}

/// Number of threads the global pool runs with (initializing it on first
/// call). Chunk *boundaries* never depend on this — callers may use it only
/// to bound per-chunk scratch allocation or pick chunk counts for
/// order-insensitive merges.
pub fn current_num_threads() -> usize {
    pool().nthreads
}

/// Run `f(i)` for every `i in 0..nchunks`, distributing chunks across the
/// pool. Blocks until all chunks retire; re-throws the first panic.
pub(crate) fn run_parallel(nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if nchunks == 0 {
        return;
    }
    let p = pool();
    if p.nthreads == 1 || nchunks == 1 {
        for i in 0..nchunks {
            f(i);
        }
        return;
    }
    p.run(nchunks, f);
}

/// Run two closures, potentially in parallel, returning both results.
/// Panics from either side are re-thrown on the caller (first one wins).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a = Mutex::new(Some(oper_a));
    let b = Mutex::new(Some(oper_b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_parallel(2, &|i| {
        if i == 0 {
            let f = a.lock().unwrap().take().unwrap();
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = b.lock().unwrap().take().unwrap();
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().unwrap(),
        rb.into_inner().unwrap().unwrap(),
    )
}

/// A job spawned into a [`Scope`]: boxed so the scope can own it, callable
/// once with the scope itself (to allow nested spawns).
type ScopeJob<'s> = Box<dyn FnOnce(&Scope<'s>) + Send + 's>;

/// A scope for spawning borrowing jobs. Unlike upstream rayon, spawned jobs
/// run in deferred batches once the scope body returns (each batch may spawn
/// more); all jobs still complete before [`scope`] returns, and panics
/// propagate to the caller.
pub struct Scope<'s> {
    jobs: Mutex<Vec<ScopeJob<'s>>>,
}

impl<'s> Scope<'s> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s>) + Send + 's,
    {
        self.jobs.lock().unwrap().push(Box::new(f));
    }
}

/// Create a scope, run `f` in it, then drain all spawned jobs (in parallel)
/// until none remain. Returns `f`'s result.
pub fn scope<'s, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'s>) -> R,
{
    let s = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let r = f(&s);
    loop {
        let batch: Vec<_> = std::mem::take(&mut *s.jobs.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        let slots: Vec<Mutex<Option<ScopeJob<'s>>>> =
            batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
        run_parallel(slots.len(), &|i| {
            let job = slots[i].lock().unwrap().take().unwrap();
            job(&s);
        });
    }
    r
}
