//! T1 — Graph statistics table: Kronecker instances across scales.
//!
//! Reconstructs the evaluation's graph-configuration table: vertex/edge
//! counts, degree profile, skew, and reachable fraction — the structural
//! facts that motivate every optimization downstream (hub handling,
//! compression, direction switching).
//!
//! Override: `G500_MAX_SCALE` (default 18), `G500_SEED`.

use g500_bench::{banner, param, Table};
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{component_stats, Csr, DegreeStats, Directedness};

fn main() {
    let max_scale = param("G500_MAX_SCALE", 18) as u32;
    let seed = param("G500_SEED", 1);
    banner(
        "T1",
        "Kronecker graph statistics (edgefactor 16)",
        &[
            ("scales", format!("14..={max_scale}")),
            ("seed", seed.to_string()),
        ],
    );

    let t = Table::new(&[
        "scale",
        "vertices",
        "edges",
        "max_deg",
        "mean_deg",
        "median",
        "isolated%",
        "top1%share",
        "giant%",
        "components",
    ]);
    for scale in 14..=max_scale {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, seed));
        let el = gen.generate_all();
        let n = gen.params().num_vertices() as usize;
        let csr = Csr::from_edges(n, &el, Directedness::Undirected);
        let stats = DegreeStats::from_csr(&csr);
        let cc = component_stats(n, &el);
        t.row(&[
            scale.to_string(),
            n.to_string(),
            el.len().to_string(),
            stats.max.to_string(),
            format!("{:.1}", stats.mean),
            stats.median.to_string(),
            format!("{:.1}", 100.0 * stats.isolated as f64 / n as f64),
            format!("{:.1}", 100.0 * stats.top1pct_arc_share),
            format!("{:.1}", 100.0 * cc.giant_size as f64 / n as f64),
            cc.components.to_string(),
        ]);
    }
    println!("\nexpected shape: heavy-tailed degrees (top-1% share >> 1%), giant component");
}
