//! The query-serving benchmark driver: resident graph + closed-loop query
//! stream + latency/QPS reporting, over the simulated machine.
//!
//! Where [`crate::driver`] reproduces the official 64-root batch
//! benchmark, this driver measures the *service* regime: a deterministic
//! synthetic stream of full and point-to-point queries admitted in
//! windows and executed through the batched kernel
//! ([`g500_sssp::QueryEngine`]). Reported latencies are virtual seconds
//! from window admission to answer; QPS is queries over the virtual
//! serving span. Both are deterministic functions of the configuration.

use crate::driver::sample_roots;
use g500_gen::{CounterRng, KroneckerGenerator, KroneckerParams};
use g500_graph::EdgeList;
use g500_partition::{assemble_local_graph, Block1D};
use g500_sssp::{OptConfig, Query, QueryEngine, ServeConfig};
use simnet::{CrashPlan, FaultEscalation, Machine, MachineConfig, TraceCode};

/// Everything a serving run needs.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex (Graph500: 16).
    pub edgefactor: u64,
    /// Generator + stream seed.
    pub seed: u64,
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Queries in the stream.
    pub num_queries: usize,
    /// Admission window width `B`.
    pub batch_width: usize,
    /// Landmarks to precompute (0 disables bounds).
    pub num_landmarks: usize,
    /// Full-result LRU capacity (0 disables the cache).
    pub lru_capacity: usize,
    /// Per-mille of queries that are point-to-point (rest are full).
    pub p2p_permille: u64,
    /// Distinct sources to draw from (0 = `max(4, num_queries/4)`;
    /// smaller pools mean more repeats, so more LRU hits).
    pub source_pool: usize,
    /// Kernel optimization stack for every batch.
    pub opts: OptConfig,
    /// Per-query latency deadline in virtual seconds (`f64::INFINITY` =
    /// none); late answers are shed (see [`g500_sssp::serve`]).
    pub deadline_s: f64,
    /// Worker threads (0 = inherit), as in the batch driver.
    pub threads: usize,
}

impl ServeBenchConfig {
    /// Defaults mirroring the batch benchmark: edgefactor 16, official
    /// seed, a mixed stream of 64 queries at window width 16.
    pub fn new(scale: u32, ranks: usize) -> Self {
        ServeBenchConfig {
            scale,
            edgefactor: 16,
            seed: 20220814,
            machine: MachineConfig::with_ranks(ranks),
            num_queries: 64,
            batch_width: 16,
            num_landmarks: 4,
            lru_capacity: 8,
            p2p_permille: 500,
            source_pool: 0,
            opts: OptConfig::all_on(),
            deadline_s: f64::INFINITY,
            threads: 0,
        }
    }

    /// Run under the deterministic scheduler (see [`simnet::SchedMode`]).
    pub fn deterministic(mut self, sched_seed: u64) -> Self {
        self.machine = self.machine.deterministic(sched_seed);
        self
    }

    /// Inject seeded rank-crash faults (see [`simnet::CrashPlan`]). The
    /// serving engine degrades rather than dying: windows whose kernel
    /// exhausts its recovery budget are retried once and then shed, and
    /// the report counts both.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.machine = self.machine.crashes(plan);
        self
    }

    /// Record a virtual-time trace of the run.
    pub fn traced(mut self, on: bool) -> Self {
        self.machine = self.machine.traced(on);
        self
    }
}

/// Synthesize the deterministic query stream: sources drawn from a fixed
/// pool of giant-component vertices (repeats exercise the LRU), a
/// configurable share upgraded to point-to-point with an independent
/// target from the same pool.
pub fn synth_queries(el: &EdgeList, n: u64, cfg: &ServeBenchConfig) -> Vec<Query> {
    let pool_size = if cfg.source_pool > 0 {
        cfg.source_pool
    } else {
        (cfg.num_queries / 4).max(4)
    };
    let pool = sample_roots(el, n, cfg.seed ^ 0x5155_4552, pool_size); // "QUER"
    assert!(!pool.is_empty(), "no connected vertex to query");
    let rng = CounterRng::new(cfg.seed ^ 0x5354_524D, 0); // "STRM"
    (0..cfg.num_queries as u64)
        .map(|i| {
            let source = pool[rng.below(3 * i, pool.len() as u64) as usize];
            if rng.below(3 * i + 1, 1000) < cfg.p2p_permille {
                let target = pool[rng.below(3 * i + 2, pool.len() as u64) as usize];
                Query::p2p(source, target)
            } else {
                Query::full(source)
            }
        })
        .collect()
}

/// The serving outcome: latency distribution, throughput, engine counters.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Problem scale.
    pub scale: u32,
    /// Vertex count.
    pub n: u64,
    /// Generated edge records.
    pub m: u64,
    /// Rank count.
    pub ranks: usize,
    /// Admission window width the run used.
    pub batch_width: usize,
    /// Queries answered.
    pub queries: u64,
    /// Of which point-to-point.
    pub p2p_queries: u64,
    /// Admission windows executed.
    pub batches: u64,
    /// Queries answered from the LRU.
    pub cache_hits: u64,
    /// Point-to-point lanes that retired early.
    pub early_exits: u64,
    /// Lanes actually run through the kernel.
    pub lanes_run: u64,
    /// Queries shed (kernel failed twice under crash faults, or the
    /// answer blew the deadline).
    pub queries_shed: u64,
    /// Lane-run queries re-admitted after a crashed window.
    pub queries_retried: u64,
    /// Kernel supersteps across all batches.
    pub supersteps: u64,
    /// Landmarks precomputed.
    pub landmarks: u64,
    /// Virtual seconds spent serving (precompute excluded).
    pub serve_time_s: f64,
    /// Queries per virtual second.
    pub qps: f64,
    /// Latency percentiles, virtual milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, virtual milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, virtual milliseconds.
    pub p99_ms: f64,
    /// Worst query latency, virtual milliseconds.
    pub max_ms: f64,
    /// Host wall-clock seconds the simulation took.
    pub wall_time_s: f64,
    /// Worker threads the pool ran with.
    pub threads: usize,
}

/// `q`-th percentile (0..=100) of an unsorted latency sample, in ms.
fn percentile_ms(sorted_s: &[f64], q: f64) -> f64 {
    if sorted_s.is_empty() {
        return 0.0;
    }
    let idx = ((q / 100.0 * sorted_s.len() as f64).ceil() as usize).clamp(1, sorted_s.len()) - 1;
    sorted_s[idx] * 1e3
}

impl ServeReport {
    /// Render the human-readable result block.
    pub fn render(&self) -> String {
        format!(
            "SCALE:                 {}\nnum_ranks:             {}\nbatch_width:           {}\n\
             queries:               {} ({} p2p)\nbatches:               {}\ncache_hits:            {}\n\
             early_exits:           {}\nlanes_run:             {}\nqueries_shed:          {}\n\
             queries_retried:       {}\nsupersteps:            {}\n\
             landmarks:             {}\nserve_time:            {:.6e} s (simulated)\n\
             QPS (simulated):       {:.3}\nlatency_p50:           {:.3} ms\nlatency_p95:           {:.3} ms\n\
             latency_p99:           {:.3} ms\nlatency_max:           {:.3} ms\nhost_threads:          {}\n",
            self.scale,
            self.ranks,
            self.batch_width,
            self.queries,
            self.p2p_queries,
            self.batches,
            self.cache_hits,
            self.early_exits,
            self.lanes_run,
            self.queries_shed,
            self.queries_retried,
            self.supersteps,
            self.landmarks,
            self.serve_time_s,
            self.qps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.threads,
        )
    }

    /// Machine-readable form (hand-rolled JSON, as everywhere else).
    pub fn to_json(&self) -> String {
        let f = |x: f64| {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        };
        format!(
            "{{\n  \"scale\": {},\n  \"n\": {},\n  \"m\": {},\n  \"ranks\": {},\n  \
             \"batch_width\": {},\n  \"queries\": {},\n  \"p2p_queries\": {},\n  \
             \"batches\": {},\n  \"cache_hits\": {},\n  \"early_exits\": {},\n  \
             \"lanes_run\": {},\n  \"queries_shed\": {},\n  \"queries_retried\": {},\n  \
             \"supersteps\": {},\n  \"landmarks\": {},\n  \
             \"serve_time_s\": {},\n  \"qps\": {},\n  \"p50_ms\": {},\n  \"p95_ms\": {},\n  \
             \"p99_ms\": {},\n  \"max_ms\": {},\n  \"wall_time_s\": {},\n  \"threads\": {}\n}}",
            self.scale,
            self.n,
            self.m,
            self.ranks,
            self.batch_width,
            self.queries,
            self.p2p_queries,
            self.batches,
            self.cache_hits,
            self.early_exits,
            self.lanes_run,
            self.queries_shed,
            self.queries_retried,
            self.supersteps,
            self.landmarks,
            f(self.serve_time_s),
            f(self.qps),
            f(self.p50_ms),
            f(self.p95_ms),
            f(self.p99_ms),
            f(self.max_ms),
            f(self.wall_time_s),
            self.threads
        )
    }
}

/// Run the query-serving benchmark: build the resident graph, precompute
/// landmarks, serve the synthetic stream, report latency and QPS. Panics
/// on fault escalation; use [`try_run_query_serving_benchmark`] to handle
/// it as a typed error.
pub fn run_query_serving_benchmark(cfg: &ServeBenchConfig) -> ServeReport {
    match try_run_query_serving_benchmark(cfg) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_query_serving_benchmark`] with typed fault escalation. Under
/// crash faults the serving loop itself degrades (retry once, then shed —
/// counted in the report); the only escalations left are a transport
/// retry budget blown through or a landmark precompute the recovery
/// budget cannot absorb (there is no query to shed before the stream
/// starts).
pub fn try_run_query_serving_benchmark(
    cfg: &ServeBenchConfig,
) -> Result<ServeReport, FaultEscalation> {
    let threads = crate::driver::apply_thread_config(cfg.threads);
    let params = KroneckerParams {
        scale: cfg.scale,
        edgefactor: cfg.edgefactor,
        ..KroneckerParams::graph500(cfg.scale, cfg.seed)
    };
    let gen = KroneckerGenerator::new(params);
    let n = params.num_vertices();
    let m = params.num_edges();
    let p = cfg.machine.ranks;

    let full_el = gen.generate_all();
    let queries = synth_queries(&full_el, n, cfg);
    let p2p_queries = queries.iter().filter(|q| q.target.is_some()).count() as u64;

    let gen_for_ranks = gen.clone();
    let queries_ref = &queries;
    let serve_cfg = ServeConfig {
        batch_width: cfg.batch_width,
        opts: cfg.opts,
        num_landmarks: cfg.num_landmarks,
        lru_capacity: cfg.lru_capacity,
        keep_paths: false,
        deadline_s: cfg.deadline_s,
    };

    let machine = Machine::new(cfg.machine);
    let report = machine.try_run(move |ctx| {
        let rank = ctx.rank();
        let (lo, hi) = (rank as u64 * m / p as u64, (rank as u64 + 1) * m / p as u64);
        ctx.trace_begin(TraceCode::Build, hi - lo, 0);
        ctx.charge_compute(hi - lo);
        let part = Block1D::new(n, p);
        let mine = gen_for_ranks.edge_block(lo..hi);
        let g = assemble_local_graph(ctx, mine.iter(), part);
        ctx.trace_end(TraceCode::Build, hi - lo, 0);

        let mut engine = QueryEngine::try_new(ctx, &g, serve_cfg.clone())?;
        let t0 = ctx.allreduce(ctx.now(), |a, b| if a > b { *a } else { *b });
        let outcomes = engine.serve(ctx, queries_ref);
        let t1 = ctx.allreduce(ctx.now(), |a, b| if a > b { *a } else { *b });
        let latencies: Vec<f64> = outcomes.iter().map(|o| o.latency_s).collect();
        Ok((t1 - t0, latencies, engine.stats().clone()))
    })?;

    let wall_time_s = report.wall_time_s;
    let (serve_time_s, mut latencies, stats) = report.results.into_iter().next().unwrap()?;
    latencies.sort_by(|a, b| a.total_cmp(b));
    let qps = if serve_time_s > 0.0 {
        stats.queries as f64 / serve_time_s
    } else {
        f64::INFINITY
    };

    Ok(ServeReport {
        scale: cfg.scale,
        n,
        m,
        ranks: p,
        batch_width: cfg.batch_width,
        queries: stats.queries,
        p2p_queries,
        batches: stats.batches,
        cache_hits: stats.cache_hits,
        early_exits: stats.early_exits,
        lanes_run: stats.lanes_run,
        queries_shed: stats.queries_shed,
        queries_retried: stats.queries_retried,
        supersteps: stats.supersteps,
        landmarks: cfg.num_landmarks as u64,
        serve_time_s,
        qps,
        p50_ms: percentile_ms(&latencies, 50.0),
        p95_ms: percentile_ms(&latencies, 95.0),
        p99_ms: percentile_ms(&latencies, 99.0),
        max_ms: latencies.last().copied().unwrap_or(0.0) * 1e3,
        wall_time_s,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_mixed() {
        let cfg = ServeBenchConfig::new(8, 2);
        let gen = KroneckerGenerator::new(KroneckerParams {
            scale: cfg.scale,
            edgefactor: cfg.edgefactor,
            ..KroneckerParams::graph500(cfg.scale, cfg.seed)
        });
        let el = gen.generate_all();
        let a = synth_queries(&el, 256, &cfg);
        let b = synth_queries(&el, 256, &cfg);
        assert_eq!(a, b);
        assert!(a.iter().any(|q| q.target.is_some()));
        assert!(a.iter().any(|q| q.target.is_none()));
    }

    #[test]
    fn serving_benchmark_reports_sane_numbers() {
        let mut cfg = ServeBenchConfig::new(9, 2).deterministic(0);
        cfg.num_queries = 24;
        cfg.batch_width = 8;
        let rep = run_query_serving_benchmark(&cfg);
        assert_eq!(rep.queries, 24);
        assert_eq!(rep.batches, 3);
        assert!(rep.qps > 0.0);
        assert!(rep.p50_ms <= rep.p95_ms && rep.p95_ms <= rep.p99_ms);
        assert!(rep.p99_ms <= rep.max_ms + 1e-9);
        assert!(rep.serve_time_s > 0.0);
        assert!(rep.render().contains("QPS"));
        assert!(rep.to_json().contains("\"qps\""));
    }

    #[test]
    fn wider_windows_amortize_supersteps() {
        let mut narrow = ServeBenchConfig::new(9, 2).deterministic(0);
        narrow.num_queries = 16;
        narrow.batch_width = 1;
        narrow.lru_capacity = 0; // isolate batching from caching
        narrow.num_landmarks = 0;
        let mut wide = narrow.clone();
        wide.batch_width = 16;
        let rn = run_query_serving_benchmark(&narrow);
        let rw = run_query_serving_benchmark(&wide);
        assert!(
            rw.supersteps * 2 < rn.supersteps,
            "wide {} vs narrow {} supersteps",
            rw.supersteps,
            rn.supersteps
        );
        assert!(
            rw.qps > rn.qps,
            "wide {:.2} vs narrow {:.2} qps",
            rw.qps,
            rn.qps
        );
    }

    #[test]
    fn crashy_serving_run_sheds_and_reports() {
        // crash rate 1.0 with landmarks off: every window fails twice, so
        // every query is shed — the run completes with a degradation
        // report instead of dying
        let mut cfg = ServeBenchConfig::new(8, 2)
            .crashes(CrashPlan::random(0xBEEF, 1.0).with_checkpoint_interval(2));
        cfg.num_queries = 8;
        cfg.batch_width = 4;
        cfg.num_landmarks = 0;
        cfg.lru_capacity = 0;
        let rep = run_query_serving_benchmark(&cfg);
        assert_eq!(rep.queries, 8);
        assert_eq!(rep.queries_shed, 8, "{rep:?}");
        assert_eq!(rep.queries_retried, 8, "{rep:?}");
        assert!(rep.render().contains("queries_shed:"));
        assert!(rep.to_json().contains("\"queries_shed\": 8"));
    }

    #[test]
    fn crashed_landmark_precompute_is_a_typed_error() {
        // with landmarks on, the precompute runs before any query exists
        // to degrade onto — a hopeless crash schedule surfaces as the
        // typed escalation, not a panic
        let cfg = ServeBenchConfig::new(8, 2)
            .crashes(CrashPlan::random(0xBEEF, 1.0).with_checkpoint_interval(2));
        match try_run_query_serving_benchmark(&cfg) {
            Err(FaultEscalation::CheckpointLost { .. })
            | Err(FaultEscalation::RecoveryBudgetExhausted { .. }) => {}
            Ok(_) => panic!("precompute cannot survive a total-loss schedule"),
            Err(e) => panic!("unexpected escalation flavor: {e}"),
        }
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let s = vec![0.001, 0.002, 0.003, 0.004];
        assert_eq!(percentile_ms(&s, 50.0), 2.0);
        assert_eq!(percentile_ms(&s, 99.0), 4.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }
}
