//! F4 — Per-bucket time breakdown: where an SSSP run spends its life.
//!
//! One root, per-bucket rows from the virtual-time trace: frontier volume,
//! compute seconds, communication seconds. The early buckets carry almost
//! all the work (dense frontiers); the long tail of late buckets is tiny
//! but each still pays full superstep latency — the figure that motivates
//! bucket fusion. Printed twice: fusion off (the problem) and fusion on
//! (the fix).
//!
//! The rows come from [`graph500::BenchmarkReport::trace_summary`] — the
//! same bucket-scoped counters every traced run records — rather than a
//! bespoke phase-timing path inside the kernel.
//!
//! Overrides: `G500_SCALE` (15), `G500_RANKS` (8).

use g500_bench::{banner, param, secs, Table};
use g500_sssp::OptConfig;
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn show(label: &str, opts: OptConfig, scale: u32, ranks: usize) {
    let mut cfg = BenchmarkConfig::graph500(scale, ranks).traced(true);
    cfg.num_roots = 1;
    cfg.validate = false;
    cfg.opts = opts;
    let rep = run_sssp_benchmark(&cfg);
    let run = &rep.runs[0];
    println!(
        "--- {label}: {} supersteps, {} buckets ---",
        run.stats.supersteps, run.stats.buckets
    );
    let summary = rep.trace_summary().expect("run was traced");
    let t = Table::new(&["bucket", "frontier", "compute", "comm", "comm_share%"]);
    let buckets = &summary.buckets;
    let share = |c: f64, m: f64| {
        let total = c + m;
        format!("{:.1}", if total > 0.0 { 100.0 * m / total } else { 0.0 })
    };
    // print the first 8 buckets and aggregate the tail
    for b in buckets.iter().take(8) {
        t.row(&[
            b.bucket.to_string(),
            b.frontier.to_string(),
            secs(b.compute_s),
            secs(b.comm_s),
            share(b.compute_s, b.comm_s),
        ]);
    }
    if buckets.len() > 8 {
        let (f, c, m) = buckets.iter().skip(8).fold((0u64, 0.0, 0.0), |acc, b| {
            (acc.0 + b.frontier, acc.1 + b.compute_s, acc.2 + b.comm_s)
        });
        t.row(&[
            format!("tail({})", buckets.len() - 8),
            f.to_string(),
            secs(c),
            secs(m),
            share(c, m),
        ]);
    }
    println!();
}

fn main() {
    let scale = param("G500_SCALE", 15) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    banner(
        "F4",
        "per-bucket time breakdown",
        &[("scale", scale.to_string()), ("ranks", ranks.to_string())],
    );

    show(
        "fusion OFF",
        OptConfig::all_on().without_fusion(),
        scale,
        ranks,
    );
    show("fusion ON", OptConfig::all_on(), scale, ranks);
    println!("expected shape: early buckets compute-heavy; the tail is comm/sync-dominated and fusion collapses it");
}
