//! The benchmark driver: kernel 0 (construction) + 64-root kernel loop +
//! validation + TEPS reporting, over the simulated machine.
//!
//! Division of labour: everything *timed* happens inside the SPMD closure
//! on simulated ranks (edge-slice generation, hub detection, assembly, the
//! kernel runs); everything *untimed* happens on the host (root sampling,
//! validation, statistics) exactly as the official harness keeps validation
//! off the clock.

use g500_gen::{CounterRng, KroneckerGenerator, KroneckerParams};
use g500_graph::{EdgeList, ShortestPaths, VertexId, NO_PARENT};
use g500_partition::{
    assemble_local_graph, Block1D, Cyclic1D, HybridPartition, LocalGraph, SparseHubRelabel,
    VertexPartition,
};
use g500_sssp::{distributed_bfs, try_distributed_delta_stepping, OptConfig, SsspRunStats};
use g500_validate::{validate_bfs, validate_sssp, SsspResult, TepsSummary};
use simnet::{
    CrashPlan, FaultEscalation, FaultPlan, Machine, MachineConfig, NetStats, Trace, TraceCode,
    TraceSummary,
};

/// How vertices are placed on ranks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PartitionStrategy {
    /// Contiguous blocks of the (scrambled) id space.
    Block,
    /// Cyclic striping.
    Cyclic,
    /// Sampled hub detection + hub striping + block tail — the paper-style
    /// degree-aware placement. `hub_factor` is the sampled-degree multiple
    /// of the mean above which a vertex counts as a hub.
    DegreeAware {
        /// Hub threshold as a multiple of the mean sampled degree.
        hub_factor: f64,
    },
}

/// Everything a benchmark run needs.
#[derive(Clone, Debug)]
pub struct BenchmarkConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex (Graph500: 16).
    pub edgefactor: u64,
    /// Generator seed.
    pub seed: u64,
    /// The simulated machine (rank count, topology, LogGP constants).
    pub machine: MachineConfig,
    /// Number of search keys (Graph500: 64).
    pub num_roots: usize,
    /// Kernel optimization configuration.
    pub opts: OptConfig,
    /// Vertex placement.
    pub partition: PartitionStrategy,
    /// Validate every root against the input edge list (host-side,
    /// untimed). Disable only for large scaling sweeps.
    pub validate: bool,
    /// Keep each root's gathered distance/parent vectors in the report
    /// (`RootRun::paths`). Off by default — O(n) memory per root — but the
    /// replay tests use it to compare runs vector-for-vector.
    pub keep_paths: bool,
    /// Worker threads for the process-global pool (`--threads`). 0 means
    /// inherit `G500_THREADS` / the hardware default. Best-effort: the pool
    /// is shared and sized at first use, so a request made after any
    /// parallel work has run is ignored. Results never depend on this (the
    /// fixed-chunk contract) — it is recorded in reports for attribution.
    pub threads: usize,
}

impl BenchmarkConfig {
    /// The official configuration: edgefactor 16, 64 roots, full
    /// optimization stack, degree-aware partition, validation on.
    pub fn graph500(scale: u32, ranks: usize) -> Self {
        Self {
            scale,
            edgefactor: 16,
            seed: 20220814, // SC'22 vintage
            machine: MachineConfig::with_ranks(ranks),
            num_roots: 64,
            opts: OptConfig::all_on(),
            partition: PartitionStrategy::DegreeAware { hub_factor: 8.0 },
            validate: true,
            keep_paths: false,
            threads: 0,
        }
    }

    /// A fast variant for tests/examples: 4 roots, otherwise official.
    pub fn quick(scale: u32, ranks: usize) -> Self {
        Self {
            num_roots: 4,
            ..Self::graph500(scale, ranks)
        }
    }

    /// Run the simulated machine under the deterministic scheduler with
    /// `sched_seed` (see [`simnet::SchedMode`]): the same configuration then
    /// reproduces byte-identical distance vectors, `NetStats`, and superstep
    /// counts across runs, and non-zero seeds fuzz delivery order.
    pub fn deterministic(mut self, sched_seed: u64) -> Self {
        self.machine = self.machine.deterministic(sched_seed);
        self
    }

    /// Inject seeded lossy-network faults (see [`simnet::FaultPlan`]). The
    /// reliable transport must mask every fault within the retry budget:
    /// distances, supersteps, and validation stay byte-identical to the
    /// fault-free run — only virtual time and the fault counters in
    /// [`NetStats`] move.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.machine = self.machine.faults(plan);
        self
    }

    /// Inject seeded rank-crash faults (see [`simnet::CrashPlan`]). The
    /// recovery layer must mask every in-budget crash schedule: distances,
    /// parents, and validation stay byte-identical to the crash-free run —
    /// only virtual time, recovery spans, and the crash counters in
    /// [`NetStats`] move. A schedule the budget cannot absorb surfaces as
    /// a typed error from [`try_run_sssp_benchmark`], never a panic.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.machine = self.machine.crashes(plan);
        self
    }

    /// Record a virtual-time trace of the run (see [`simnet::Trace`]). Off
    /// by default; tracing observes virtual time and counters but never
    /// advances the clock, so distances, `NetStats`, and the rendered
    /// report are byte-identical with tracing on or off.
    pub fn traced(mut self, on: bool) -> Self {
        self.machine = self.machine.traced(on);
        self
    }
}

/// One root's outcome.
#[derive(Clone, Debug)]
pub struct RootRun {
    /// The sampled search key (original vertex id).
    pub root: VertexId,
    /// Simulated seconds for the kernel (max over ranks).
    pub sim_time_s: f64,
    /// Input edges with an endpoint in the traversed component.
    pub traversed_edges: u64,
    /// `Some(true/false)` when validation ran; `None` when skipped.
    pub validated: Option<bool>,
    /// Rank-0 kernel counters for this run.
    pub stats: SsspRunStats,
    /// The gathered distance/parent vectors (original vertex ids), kept
    /// only when [`BenchmarkConfig::keep_paths`] is set.
    pub paths: Option<ShortestPaths>,
}

/// The full benchmark outcome.
#[derive(Clone, Debug)]
pub struct BenchmarkReport {
    /// Problem scale.
    pub scale: u32,
    /// Vertex count.
    pub n: u64,
    /// Generated edge records.
    pub m: u64,
    /// Rank count.
    pub ranks: usize,
    /// Simulated seconds for graph construction (kernel 0).
    pub construction_time_s: f64,
    /// Per-root outcomes.
    pub runs: Vec<RootRun>,
    /// The official TEPS distribution over the roots.
    pub teps: TepsSummary,
    /// Aggregate network counters over the whole job.
    pub net: NetStats,
    /// Per-rank network counters (index = rank) — the load-balance view.
    pub per_rank_net: Vec<NetStats>,
    /// Host wall-clock seconds the simulation took.
    pub wall_time_s: f64,
    /// Worker threads the process-global pool actually ran with, so runs
    /// are attributable when comparing wall times.
    pub threads: usize,
    /// The fault plan the machine ran under (echoed so archived sweeps are
    /// attributable; [`FaultPlan::none`] for a perfect network).
    pub fault: FaultPlan,
    /// The crash plan the machine ran under ([`CrashPlan::none`] when
    /// process faults were off).
    pub crash: CrashPlan,
    /// The merged virtual-time trace, present only when the run was traced
    /// (see [`BenchmarkConfig::traced`]).
    pub trace: Option<Trace>,
}

impl BenchmarkReport {
    /// True when every validated run passed (and at least one ran).
    pub fn all_validated(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.validated != Some(false))
    }

    /// Summarize the recorded trace, if the run was traced.
    pub fn trace_summary(&self) -> Option<TraceSummary> {
        self.trace.as_ref().map(|t| t.summary())
    }

    /// Render the official-style result block.
    pub fn render(&self) -> String {
        let mut s = format!(
            "SCALE:                 {}\nedgefactor:            {}\nNBFS:                  {}\nnum_ranks:             {}\nconstruction_time:     {:.6e} s (simulated)\n",
            self.scale,
            self.m / self.n.max(1),
            self.runs.len(),
            self.ranks,
            self.construction_time_s,
        );
        s.push_str(&self.teps.render("TEPS (simulated):"));
        s.push_str(&format!(
            "\ntotal_messages:        {}\ntotal_bytes:           {}\nhost_threads:          {}\n",
            self.net.total_msgs(),
            self.net.total_bytes(),
            self.threads
        ));
        if self.fault.is_active() {
            s.push_str(&format!(
                "fault_seed:            {}\nretransmits:           {}\ntimeouts:              {}\ncorrupt_frames:        {}\ndup_frames_dropped:    {}\nreordered_frames:      {}\nstall_events:          {}\n",
                self.fault.seed,
                self.net.retransmits,
                self.net.timeouts,
                self.net.corrupt_frames,
                self.net.dup_frames_dropped,
                self.net.reordered_frames,
                self.net.stall_events,
            ));
        }
        if self.crash.is_active() {
            s.push_str(&format!(
                "crash_seed:            {}\ncrashes_injected:      {}\ncheckpoints_taken:     {}\ncheckpoint_bytes:      {}\nrestores:              {}\nreplayed_supersteps:   {}\n",
                self.crash.seed,
                self.net.crashes,
                self.net.checkpoints,
                self.net.checkpoint_bytes,
                self.net.restores,
                self.net.replayed_supersteps,
            ));
        }
        if let Some(summary) = self.trace_summary() {
            s.push_str(&summary.render());
        }
        s
    }

    /// Machine-readable form of the whole report (per-root runs, kernel
    /// counters, per-rank traffic), for archiving sweeps. Hand-rolled JSON:
    /// the workspace carries no serde, and every field is numeric.
    pub fn to_json(&self) -> String {
        let f = |x: f64| {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        };
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                let validated = match r.validated {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "null",
                };
                format!(
                    "    {{\"root\":{},\"sim_time_s\":{},\"traversed_edges\":{},\
                     \"validated\":{},\"stats\":{}}}",
                    r.root,
                    f(r.sim_time_s),
                    r.traversed_edges,
                    validated,
                    r.stats.to_json()
                )
            })
            .collect();
        let per_rank: Vec<String> = self
            .per_rank_net
            .iter()
            .map(|s| format!("    {}", s.to_json()))
            .collect();
        // The trace entry appears only on traced runs, so untraced JSON is
        // byte-identical to a build without tracing at all.
        let trace_field = match self.trace_summary() {
            Some(summary) => format!("  \"trace\": {},\n", summary.to_json()),
            None => String::new(),
        };
        // Same pattern for the crash plan: crash-free reports don't
        // mention process faults at all.
        let crash_field = if self.crash.is_active() {
            format!("  \"crash\": {},\n", self.crash.to_json())
        } else {
            String::new()
        };
        format!(
            "{{\n  \"scale\": {},\n  \"n\": {},\n  \"m\": {},\n  \"ranks\": {},\n  \
             \"construction_time_s\": {},\n  \"runs\": [\n{}\n  ],\n  \"teps\": {},\n  \
             \"net\": {},\n  \"per_rank_net\": [\n{}\n  ],\n  \"fault\": {},\n{}{}  \
             \"wall_time_s\": {},\n  \"threads\": {}\n}}",
            self.scale,
            self.n,
            self.m,
            self.ranks,
            f(self.construction_time_s),
            runs.join(",\n"),
            self.teps.to_json(),
            self.net.to_json(),
            per_rank.join(",\n"),
            self.fault.to_json(),
            crash_field,
            trace_field,
            f(self.wall_time_s),
            self.threads
        )
    }
}

/// Sampled hub detection: estimate high-degree vertices from a fixed,
/// deterministic sample of generator edges (identical on every rank — the
/// sample is a pure function of the seed, so no communication is needed).
fn detect_hubs(gen: &KroneckerGenerator, hub_factor: f64) -> Vec<VertexId> {
    let m = gen.params().num_edges();
    let n = gen.params().num_vertices();
    let sample = m.min(1 << 16);
    let rng = CounterRng::new(gen.params().seed ^ 0x4855_4253, 0); // "HUBS"
    let mut counts: std::collections::HashMap<VertexId, u32> = std::collections::HashMap::new();
    for i in 0..sample {
        let e = gen.edge(rng.below(i, m));
        *counts.entry(e.u).or_insert(0) += 1;
        *counts.entry(e.v).or_insert(0) += 1;
    }
    let mean = 2.0 * sample as f64 / n as f64;
    let threshold = (mean * hub_factor).max(4.0);
    let mut hubs: Vec<(u32, VertexId)> = counts
        .into_iter()
        .filter(|&(_, c)| c as f64 >= threshold)
        .map(|(v, c)| (c, v))
        .collect();
    // deterministic priority: count desc, id asc
    hubs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    hubs.truncate(4096);
    hubs.into_iter().map(|(_, v)| v).collect()
}

/// Host-side root sampling: uniform vertices of the giant component,
/// distinct, deterministic in the seed.
///
/// The spec samples uniformly among vertices with degree ≥ 1. At the
/// paper's scale (2^42+), essentially every such vertex is in the giant
/// component; at simulation scales (2^8..2^20) a sizable fraction sits in
/// dust components, and a dust root turns its TEPS sample into a
/// component-size measurement (tiny numerator, fixed-overhead
/// denominator) that wrecks the harmonic mean for reasons that would not
/// exist at record scale. Conditioning on the giant component restores
/// the regime being reproduced; DESIGN.md lists this under substitutions.
pub(crate) fn sample_roots(el: &EdgeList, n: u64, seed: u64, count: usize) -> Vec<VertexId> {
    let mut uf = g500_graph::UnionFind::new(n as usize);
    for e in el.iter() {
        if !e.is_loop() {
            uf.union(e.u as usize, e.v as usize);
        }
    }
    // the giant component's representative
    let mut giant_rep = 0usize;
    let mut giant_size = 0usize;
    for v in 0..n as usize {
        let s = uf.component_size(v);
        if s > giant_size {
            giant_size = s;
            giant_rep = uf.find(v);
        }
    }
    let rng = CounterRng::new(seed ^ 0x524F_4F54, 0); // "ROOT"
    let mut roots = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    let mut ctr = 0u64;
    while roots.len() < count && ctr < 1000 * count as u64 + 1000 {
        let cand = rng.below(ctr, n);
        ctr += 1;
        if giant_size > 1 && uf.find(cand as usize) == giant_rep && seen.insert(cand) {
            roots.push(cand);
        }
    }
    roots
}

/// What each rank returns: rank 0 carries the gathered per-root results.
type RankOutput = (f64, Vec<(f64, SsspRunStats, ShortestPaths)>);

/// Generic per-partition kernel loop (monomorphised per partition type).
/// A kernel-level fault escalation (recovery budget exhausted, checkpoint
/// lost) aborts the remaining roots and propagates as the identical `Err`
/// on every rank.
fn run_ranks<P: VertexPartition>(
    ctx: &mut simnet::RankCtx,
    graph: &LocalGraph<P>,
    roots_new: &[VertexId],
    relabel: Option<&SparseHubRelabel>,
    opts: &OptConfig,
    construction_end: f64,
) -> Result<RankOutput, FaultEscalation> {
    let mut per_root = Vec::with_capacity(roots_new.len());
    for (ri, &root) in roots_new.iter().enumerate() {
        ctx.trace_begin(TraceCode::RootRun, ri as u64, root);
        let (sp, stats) = try_distributed_delta_stepping(ctx, graph, root, opts)?;
        let time = ctx.allreduce(stats.sim_time_s, |a, b| if a > b { *a } else { *b });
        let gathered = sp.gather_to_all(ctx, graph.part());
        ctx.trace_end(TraceCode::RootRun, ri as u64, root);
        if ctx.rank() == 0 {
            // translate back to original ids if a relabel was applied
            let translated = match relabel {
                None => gathered,
                Some(r) => {
                    let n = gathered.dist.len();
                    let mut orig = ShortestPaths::unreached(n);
                    for v in 0..n as u64 {
                        let l = r.apply(v);
                        orig.dist[v as usize] = gathered.dist[l as usize];
                        let p = gathered.parent[l as usize];
                        orig.parent[v as usize] = if p == NO_PARENT {
                            NO_PARENT
                        } else {
                            r.invert(p)
                        };
                    }
                    orig
                }
            };
            per_root.push((time, stats, translated));
        }
    }
    Ok((construction_end, per_root))
}

/// Apply the configured pool size (best-effort: the pool is process-global
/// and fixed at first use) and return the thread count runs actually use.
pub(crate) fn apply_thread_config(requested: usize) -> usize {
    if requested > 0 {
        rayon::configure_threads(requested);
    }
    rayon::current_num_threads()
}

/// Run the full SSSP benchmark (Graph500 kernels 0 + 3). Panics on fault
/// escalation; use [`try_run_sssp_benchmark`] to handle it as a typed
/// error.
pub fn run_sssp_benchmark(cfg: &BenchmarkConfig) -> BenchmarkReport {
    match try_run_sssp_benchmark(cfg) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_sssp_benchmark`] with typed fault escalation: a transport retry
/// budget blown through, a crash-recovery budget exhausted, or a lost
/// checkpoint returns `Err` instead of panicking, so drivers (the CLI,
/// sweep harnesses) can report the failure and exit cleanly.
pub fn try_run_sssp_benchmark(cfg: &BenchmarkConfig) -> Result<BenchmarkReport, FaultEscalation> {
    let threads = apply_thread_config(cfg.threads);
    let params = KroneckerParams {
        scale: cfg.scale,
        edgefactor: cfg.edgefactor,
        ..KroneckerParams::graph500(cfg.scale, cfg.seed)
    };
    let gen = KroneckerGenerator::new(params);
    let n = params.num_vertices();
    let m = params.num_edges();
    let p = cfg.machine.ranks;

    // Host-side: the reference edge list for roots + validation.
    let full_el = gen.generate_all();
    let roots = sample_roots(&full_el, n, cfg.seed, cfg.num_roots);
    assert!(
        !roots.is_empty(),
        "no vertex with an edge — graph too small?"
    );

    let gen_for_ranks = gen.clone();
    let partition = cfg.partition;
    let opts = cfg.opts;
    let roots_ref = &roots;

    let machine = Machine::new(cfg.machine);
    // try_run surfaces transport escalations (panic payloads from the
    // reliable transport); recovery escalations come back as ordinary
    // `Err` values in the per-rank results, identical on every rank.
    let report = machine.try_run(move |ctx| {
        let rank = ctx.rank();
        let (lo, hi) = (rank as u64 * m / p as u64, (rank as u64 + 1) * m / p as u64);
        ctx.trace_begin(TraceCode::Build, hi - lo, 0);
        // generation cost: the counter-based generator is charged per edge
        ctx.charge_compute(hi - lo);

        match partition {
            PartitionStrategy::Block => {
                let part = Block1D::new(n, p);
                let mine = gen_for_ranks.edge_block(lo..hi);
                let g = assemble_local_graph(ctx, mine.iter(), part);
                let built = ctx.allreduce(ctx.now(), |a, b| if a > b { *a } else { *b });
                ctx.trace_end(TraceCode::Build, hi - lo, 0);
                run_ranks(ctx, &g, roots_ref, None, &opts, built)
            }
            PartitionStrategy::Cyclic => {
                let part = Cyclic1D::new(n, p);
                let mine = gen_for_ranks.edge_block(lo..hi);
                let g = assemble_local_graph(ctx, mine.iter(), part);
                let built = ctx.allreduce(ctx.now(), |a, b| if a > b { *a } else { *b });
                ctx.trace_end(TraceCode::Build, hi - lo, 0);
                run_ranks(ctx, &g, roots_ref, None, &opts, built)
            }
            PartitionStrategy::DegreeAware { hub_factor } => {
                // hub detection is deterministic and identical on all ranks
                let hubs = detect_hubs(&gen_for_ranks, hub_factor);
                ctx.charge_compute(1 << 16); // the sampling scan
                let relabel = SparseHubRelabel::new(n, hubs);
                let part = HybridPartition::new(n, p, relabel.hub_count());
                let mut mine = gen_for_ranks.edge_block(lo..hi);
                mine.relabel(|v| relabel.apply(v));
                let g = assemble_local_graph(ctx, mine.iter(), part);
                let built = ctx.allreduce(ctx.now(), |a, b| if a > b { *a } else { *b });
                ctx.trace_end(TraceCode::Build, hi - lo, 0);
                let roots_new: Vec<VertexId> =
                    roots_ref.iter().map(|&r| relabel.apply(r)).collect();
                run_ranks(ctx, &g, &roots_new, Some(&relabel), &opts, built)
            }
        }
    })?;

    // Host-side: validation + statistics from rank 0's gathered results.
    let wall_time_s = report.wall_time_s;
    let net = report.total_stats();
    let per_rank_net = report.stats.clone();
    let trace = (!report.traces.is_empty()).then(|| Trace::merge(report.traces));
    let mut results = report.results;
    let (construction_time_s, per_root) = results.swap_remove(0)?;

    let mut runs = Vec::with_capacity(per_root.len());
    for (&root, (time, stats, sp)) in roots.iter().zip(per_root) {
        let reached = |v: u64| sp.dist[v as usize].is_finite();
        let traversed = g500_validate::count_traversed_edges(&full_el, reached);
        let validated = if cfg.validate {
            let res = SsspResult {
                root,
                dist: sp.dist.clone(),
                parent: sp.parent.clone(),
            };
            let rep = validate_sssp(n, &full_el, &res);
            if !rep.ok {
                eprintln!("validation FAILED for root {root}: {:?}", rep.errors);
            }
            Some(rep.ok)
        } else {
            None
        };
        let paths = cfg.keep_paths.then_some(sp);
        runs.push(RootRun {
            root,
            sim_time_s: time,
            traversed_edges: traversed,
            validated,
            stats,
            paths,
        });
    }

    let teps = TepsSummary::from_samples(
        &runs
            .iter()
            .map(|r| (r.traversed_edges, r.sim_time_s))
            .collect::<Vec<_>>(),
    );

    Ok(BenchmarkReport {
        scale: cfg.scale,
        n,
        m,
        ranks: p,
        construction_time_s,
        runs,
        teps,
        net,
        per_rank_net,
        wall_time_s,
        threads,
        fault: cfg.machine.fault,
        crash: cfg.machine.crash,
        trace,
    })
}

/// Run the BFS benchmark (Graph500 kernels 0 + 2) with the same harness.
/// Uses the kernel's hybrid direction optimization; block partitioning
/// (BFS has no bucket state to balance, and this mirrors the companion
/// paper's setup at our simulation scale).
///
/// BFS carries no checkpoint/restore hooks: a configured [`CrashPlan`] is
/// inert here (the crash lottery only draws at recovery probe points,
/// which only the SSSP kernels install).
pub fn run_bfs_benchmark(cfg: &BenchmarkConfig) -> BenchmarkReport {
    let threads = apply_thread_config(cfg.threads);
    let params = KroneckerParams {
        scale: cfg.scale,
        edgefactor: cfg.edgefactor,
        ..KroneckerParams::graph500(cfg.scale, cfg.seed)
    };
    let gen = KroneckerGenerator::new(params);
    let n = params.num_vertices();
    let m = params.num_edges();
    let p = cfg.machine.ranks;

    let full_el = gen.generate_all();
    let roots = sample_roots(&full_el, n, cfg.seed, cfg.num_roots);
    let gen_for_ranks = gen.clone();
    let roots_ref = &roots;
    let direction = cfg.opts.direction;

    let machine = Machine::new(cfg.machine);
    let report = machine.run(move |ctx| {
        let rank = ctx.rank();
        let (lo, hi) = (rank as u64 * m / p as u64, (rank as u64 + 1) * m / p as u64);
        ctx.trace_begin(TraceCode::Build, hi - lo, 0);
        ctx.charge_compute(hi - lo);
        let part = Block1D::new(n, p);
        let mine = gen_for_ranks.edge_block(lo..hi);
        let g = assemble_local_graph(ctx, mine.iter(), part);
        let built = ctx.allreduce(ctx.now(), |a, b| if a > b { *a } else { *b });
        ctx.trace_end(TraceCode::Build, hi - lo, 0);

        let mut per_root = Vec::new();
        for (ri, &root) in roots_ref.iter().enumerate() {
            ctx.trace_begin(TraceCode::RootRun, ri as u64, root);
            let before = ctx.now();
            let (res, _stats) = distributed_bfs(ctx, &g, root, direction);
            let time = ctx.allreduce(ctx.now() - before, |a, b| if a > b { *a } else { *b });
            let (level, parent) = res.gather_to_all(ctx, g.part());
            ctx.trace_end(TraceCode::RootRun, ri as u64, root);
            if ctx.rank() == 0 {
                per_root.push((time, level, parent));
            }
        }
        (built, per_root)
    });

    let wall_time_s = report.wall_time_s;
    let net = report.total_stats();
    let per_rank_net = report.stats.clone();
    let trace = (!report.traces.is_empty()).then(|| Trace::merge(report.traces));
    let mut results = report.results;
    let (construction_time_s, per_root) = results.swap_remove(0);

    let mut runs = Vec::with_capacity(per_root.len());
    for (&root, (time, level, parent)) in roots.iter().zip(per_root) {
        let reached = |v: u64| level[v as usize] >= 0;
        let traversed = g500_validate::count_traversed_edges(&full_el, reached);
        let validated = if cfg.validate {
            let ok = validate_bfs(n, &full_el, root, &level, &parent).is_ok();
            Some(ok)
        } else {
            None
        };
        runs.push(RootRun {
            root,
            sim_time_s: time,
            traversed_edges: traversed,
            validated,
            stats: SsspRunStats::default(),
            paths: None,
        });
    }

    let teps = TepsSummary::from_samples(
        &runs
            .iter()
            .map(|r| (r.traversed_edges, r.sim_time_s))
            .collect::<Vec<_>>(),
    );

    BenchmarkReport {
        scale: cfg.scale,
        n,
        m,
        ranks: p,
        construction_time_s,
        runs,
        teps,
        net,
        per_rank_net,
        wall_time_s,
        threads,
        fault: cfg.machine.fault,
        crash: cfg.machine.crash,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sssp_benchmark_validates() {
        let cfg = BenchmarkConfig::quick(8, 2);
        let rep = run_sssp_benchmark(&cfg);
        assert_eq!(rep.runs.len(), 4);
        assert!(
            rep.all_validated(),
            "{:#?}",
            rep.runs.iter().map(|r| r.validated).collect::<Vec<_>>()
        );
        assert!(rep.teps.harmonic_mean > 0.0);
        assert!(rep.construction_time_s > 0.0);
        assert!(rep.render().contains("harmonic_mean"));
    }

    #[test]
    fn all_partition_strategies_validate() {
        for part in [
            PartitionStrategy::Block,
            PartitionStrategy::Cyclic,
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ] {
            let mut cfg = BenchmarkConfig::quick(8, 3);
            cfg.partition = part;
            let rep = run_sssp_benchmark(&cfg);
            assert!(rep.all_validated(), "{part:?}");
        }
    }

    #[test]
    fn bfs_benchmark_validates() {
        let cfg = BenchmarkConfig::quick(8, 2);
        let rep = run_bfs_benchmark(&cfg);
        assert!(rep.all_validated());
        assert!(rep.teps.harmonic_mean > 0.0);
    }

    #[test]
    fn lossy_run_matches_fault_free_distances() {
        let mut clean_cfg = BenchmarkConfig::quick(8, 2);
        clean_cfg.keep_paths = true;
        let lossy_cfg = clean_cfg
            .clone()
            .faults(FaultPlan::lossy(0xF00D, 0.05, 0.02, 0.01));
        let clean = run_sssp_benchmark(&clean_cfg);
        let lossy = run_sssp_benchmark(&lossy_cfg);
        assert!(lossy.all_validated());
        for (a, b) in clean.runs.iter().zip(&lossy.runs) {
            assert_eq!(a.root, b.root);
            assert_eq!(a.paths, b.paths, "faults changed distances for {}", a.root);
        }
        assert!(lossy.net.retransmits > 0, "{:?}", lossy.net);
        assert!(lossy.render().contains("retransmits:"));
        assert!(lossy.to_json().contains("\"retransmits\":"));
        assert!(!clean.render().contains("retransmits:"));
    }

    #[test]
    fn crash_run_matches_fault_free_distances() {
        let mut clean_cfg = BenchmarkConfig::quick(8, 2);
        clean_cfg.keep_paths = true;
        let crash_cfg = clean_cfg
            .clone()
            .crashes(CrashPlan::random(0xC4A5, 0.002).with_checkpoint_interval(2));
        let clean = run_sssp_benchmark(&clean_cfg);
        let crashed = run_sssp_benchmark(&crash_cfg);
        assert!(crashed.all_validated());
        assert!(
            crashed.net.saw_crashes(),
            "the schedule must actually crash someone: {:?}",
            crashed.net
        );
        for (a, b) in clean.runs.iter().zip(&crashed.runs) {
            assert_eq!(a.root, b.root);
            assert_eq!(a.paths, b.paths, "crashes changed distances for {}", a.root);
        }
        assert!(crashed.render().contains("crashes_injected:"));
        assert!(crashed.to_json().contains("\"crash\":"));
        assert!(!clean.render().contains("crashes_injected:"));
        assert!(!clean.to_json().contains("\"crash\":"));
    }

    #[test]
    fn exhausted_recovery_is_a_typed_error_not_a_panic() {
        // crash rate 1.0 kills every rank at the first probe: with every
        // buddy dead too, no checkpoint survives — the driver must get the
        // typed escalation back, not a panic
        let cfg = BenchmarkConfig::quick(8, 2).crashes(
            CrashPlan::random(0xEE, 1.0)
                .with_recovery_budget(1)
                .with_checkpoint_interval(2),
        );
        match try_run_sssp_benchmark(&cfg) {
            Err(FaultEscalation::CheckpointLost { .. })
            | Err(FaultEscalation::RecoveryBudgetExhausted { .. }) => {}
            Ok(_) => panic!("a total-loss crash schedule cannot produce a report"),
            Err(e) => panic!("unexpected escalation flavor: {e}"),
        }
    }

    #[test]
    fn root_sampling_is_deterministic_and_degree_filtered() {
        let el = g500_gen::simple::path(4, 1.0); // vertices 4..7 isolated
        let a = sample_roots(&el, 8, 1, 3);
        let b = sample_roots(&el, 8, 2, 3); // different seed, same inputs
        let c = sample_roots(&el, 8, 2, 3);
        assert_eq!(b, c, "same seed must reproduce");
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&r| r < 4), "picked an isolated root: {a:?}");
        // distinct
        let mut d = a.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), a.len());
    }

    #[test]
    fn hub_detection_finds_kronecker_hubs() {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(12, 99));
        let hubs = detect_hubs(&gen, 8.0);
        assert!(!hubs.is_empty(), "a scale-12 Kronecker graph has hubs");
        // the detected hubs should really be high-degree: check the top one
        let el = gen.generate_all();
        let mut deg = vec![0u64; 1 << 12];
        for e in el.iter() {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let mean = 2.0 * el.len() as f64 / (1 << 12) as f64;
        assert!(
            deg[hubs[0] as usize] as f64 > 4.0 * mean,
            "top hub degree {} vs mean {mean:.1}",
            deg[hubs[0] as usize]
        );
    }
}
