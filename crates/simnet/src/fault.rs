//! Seeded lossy-network fault injection.
//!
//! The paper's record run holds 40M cores in lockstep for hours only
//! because the interconnect stack masks transient faults below the
//! application: dropped, duplicated, reordered, and corrupted packets are
//! absorbed by link-level retransmission long before MPI sees them. This
//! module is the *adversary* half of that contract: a [`FaultPlan`]
//! describes per-link fault probabilities (plus seeded rank stall windows),
//! and every fault decision is drawn from a SplitMix64 stream keyed by
//! `(fault_seed, src, dst)` and advanced only by the sending rank — so a
//! fault schedule is a pure function of the plan, independent of host
//! thread scheduling and of [`SchedMode`], and any failing run replays
//! exactly from `--fault-seed`.
//!
//! The defender half — CRC32 framing, per-stream sequence numbers,
//! dedup/reassembly, ack/retransmit with exponential backoff — lives in
//! [`crate::transport`]. Under any fault seed whose faults stay within the
//! retry budget, kernels on top of [`crate::RankCtx`] must produce
//! bitwise-identical results to the fault-free run; only virtual time and
//! the fault counters in [`crate::NetStats`] may move.
//!
//! [`SchedMode`]: crate::sched::SchedMode

use crate::sched::splitmix64;

/// A replayable description of how the simulated interconnect misbehaves.
///
/// All rates are per-frame probabilities in `[0, 1]`; the default plan
/// ([`FaultPlan::none`]) is a perfect network and makes the transport a
/// pass-through (byte-identical behaviour to the historical lossless
/// simnet, including `NetStats`). Stall windows freeze a rank for
/// [`stall_s`](FaultPlan::stall_s) virtual seconds at seeded points of its
/// send stream, modelling OS jitter / GC pauses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of every fault lottery. Same plan ⇒ same fault schedule,
    /// independent of scheduler mode and thread count.
    pub seed: u64,
    /// Probability that a data frame is dropped in flight (the ack return
    /// path rolls the same rate independently).
    pub drop: f64,
    /// Probability that a delivered data frame arrives twice.
    pub duplicate: f64,
    /// Probability that a delivered data frame is delayed past its
    /// successors (masked by sequence-number reassembly; costs time).
    pub reorder: f64,
    /// Probability that a data frame is corrupted in flight (a seeded bit
    /// burst of ≤ 32 bits — always caught by the CRC32 frame check).
    pub corrupt: f64,
    /// Number of stall windows injected per rank (0 disables stalls).
    pub stalls_per_rank: u32,
    /// Base length of one stall window in virtual seconds (jittered by the
    /// seeded stream to 0.5×–1.5×).
    pub stall_s: f64,
    /// Spacing of stall windows in sent-message counts: window `i` triggers
    /// at a seeded point inside `[i·stall_every, (i+1)·stall_every)`.
    pub stall_every: u64,
    /// Maximum retransmissions per frame before the transport escalates to
    /// a fail-stop [`TransportError`](crate::transport::TransportError).
    pub retry_budget: u32,
    /// Base retransmit timeout in virtual seconds (doubles per retry via
    /// [`backoff`](FaultPlan::backoff)).
    pub rto_s: f64,
    /// Exponential backoff multiplier applied to the timeout after every
    /// failed attempt.
    pub backoff: f64,
    /// Maximum payload bytes per frame; larger messages are fragmented and
    /// reassembled in sequence order at the receiver.
    pub mtu: usize,
}

impl FaultPlan {
    /// A perfect network: all fault rates zero, no stalls. The transport
    /// layer short-circuits to the historical lossless path.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            stalls_per_rank: 0,
            stall_s: 0.0,
            stall_every: 256,
            retry_budget: 16,
            rto_s: 25.0e-6,
            backoff: 2.0,
            mtu: 4096,
        }
    }

    /// A lossy profile: `drop`/`duplicate`/`corrupt` as given, reorder at
    /// half the drop rate, no stalls.
    pub fn lossy(seed: u64, drop: f64, duplicate: f64, corrupt: f64) -> Self {
        FaultPlan {
            seed,
            drop,
            duplicate,
            corrupt,
            reorder: drop / 2.0,
            ..Self::none()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style drop-rate override.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Builder-style duplicate-rate override.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Builder-style reorder-rate override.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Builder-style corrupt-rate override.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Builder-style retry-budget override.
    pub fn with_retry_budget(mut self, n: u32) -> Self {
        self.retry_budget = n;
        self
    }

    /// Builder-style stall-window configuration: `n` windows per rank of
    /// `stall_s` base seconds, spaced `every` sent messages apart.
    pub fn with_stalls(mut self, n: u32, stall_s: f64, every: u64) -> Self {
        self.stalls_per_rank = n;
        self.stall_s = stall_s;
        self.stall_every = every.max(1);
        self
    }

    /// True when any fault class is enabled. Inactive plans bypass the
    /// reliable transport entirely (zero overhead, legacy byte accounting).
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.reorder > 0.0
            || self.corrupt > 0.0
            || self.stalls_per_rank > 0
    }

    /// Validate rates (debug aid for CLI plumbing): every probability must
    /// be a finite value in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("corrupt", self.corrupt),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("fault rate {name} = {p} is not in [0, 1]"));
            }
        }
        if self.mtu == 0 {
            return Err("mtu must be nonzero".into());
        }
        Ok(())
    }

    /// Render as a JSON object (hand-rolled like the rest of the
    /// workspace's reports; all fields numeric).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"drop\":{},\"duplicate\":{},\"reorder\":{},\"corrupt\":{},\
             \"stalls_per_rank\":{},\"stall_s\":{},\"retry_budget\":{},\"mtu\":{}}}",
            self.seed,
            crate::stats::json_f64(self.drop),
            crate::stats::json_f64(self.duplicate),
            crate::stats::json_f64(self.reorder),
            crate::stats::json_f64(self.corrupt),
            self.stalls_per_rank,
            crate::stats::json_f64(self.stall_s),
            self.retry_budget,
            self.mtu,
        )
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Maximum explicitly scheduled crash windows in a [`CrashPlan`]. A fixed
/// array keeps the plan `Copy` (it lives inside `MachineConfig`); tests use
/// forced windows to place crashes precisely, production runs use `rate`.
pub const MAX_FORCED_CRASHES: usize = 4;

/// Sentinel for an unused forced-crash slot.
const NO_FORCED: (u32, u32) = (u32::MAX, u32::MAX);

/// A replayable description of *process* faults: seeded rank crashes
/// recovered through superstep-boundary checkpoints (see
/// [`crate::recovery`]).
///
/// Crash decisions are drawn from a per-rank SplitMix64 stream keyed by
/// `(seed, rank)` and advanced once per recovery probe (a collectively
/// consistent point of the superstep loop), so a crash schedule — like the
/// link-fault schedule — is a pure function of the plan and the program's
/// probe sequence, independent of host threads and of
/// [`SchedMode`](crate::sched::SchedMode). The draw counter is *never*
/// rolled back by a restore: a crash window fires exactly once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashPlan {
    /// Seed of the per-rank crash lottery.
    pub seed: u64,
    /// Probability that a rank dies at any one recovery probe.
    pub rate: f64,
    /// Total rank deaths the job will recover from before escalating a
    /// typed [`FaultEscalation`](crate::recovery::FaultEscalation).
    pub recovery_budget: u32,
    /// Supersteps between checkpoints (≥ 1). Smaller means less replay on
    /// restore, more checkpoint traffic.
    pub checkpoint_interval: u64,
    /// Virtual seconds every survivor spends detecting a death (the
    /// timeout-at-next-collective model).
    pub detect_timeout_s: f64,
    /// Extra virtual seconds the respawned rank spends coming back up
    /// before its checkpoint is re-shipped.
    pub respawn_s: f64,
    /// Explicit crash windows as `(rank, probe_index)` pairs; unused slots
    /// hold `(u32::MAX, u32::MAX)`. Fires in addition to `rate`.
    pub forced: [(u32, u32); MAX_FORCED_CRASHES],
}

impl CrashPlan {
    /// No process faults (the default): ranks are immortal and the
    /// recovery machinery is compiled out of the hot path.
    pub fn none() -> Self {
        CrashPlan {
            seed: 0,
            rate: 0.0,
            recovery_budget: 8,
            checkpoint_interval: 4,
            detect_timeout_s: 200.0e-6,
            respawn_s: 1.0e-3,
            forced: [NO_FORCED; MAX_FORCED_CRASHES],
        }
    }

    /// Seeded random crashes at `rate` per rank per probe.
    pub fn random(seed: u64, rate: f64) -> Self {
        CrashPlan {
            seed,
            rate,
            ..Self::none()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style rate override.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Builder-style recovery-budget override.
    pub fn with_recovery_budget(mut self, n: u32) -> Self {
        self.recovery_budget = n;
        self
    }

    /// Builder-style checkpoint-interval override.
    pub fn with_checkpoint_interval(mut self, every: u64) -> Self {
        self.checkpoint_interval = every.max(1);
        self
    }

    /// Schedule an explicit crash of `rank` at probe `probe_index`.
    /// Panics when all [`MAX_FORCED_CRASHES`] slots are taken.
    pub fn with_forced(mut self, rank: u32, probe_index: u32) -> Self {
        let slot = self
            .forced
            .iter()
            .position(|&w| w == NO_FORCED)
            .expect("too many forced crash windows");
        self.forced[slot] = (rank, probe_index);
        self
    }

    /// True when any crash source is enabled.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 || self.forced.iter().any(|&w| w != NO_FORCED)
    }

    /// Validate the plan (CLI plumbing aid).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.rate) || !self.rate.is_finite() {
            return Err(format!("crash rate {} is not in [0, 1]", self.rate));
        }
        if self.checkpoint_interval == 0 {
            return Err("checkpoint interval must be >= 1".into());
        }
        for (name, s) in [
            ("detect_timeout_s", self.detect_timeout_s),
            ("respawn_s", self.respawn_s),
        ] {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("{name} = {s} must be finite and >= 0"));
            }
        }
        Ok(())
    }

    /// Render as a JSON object (hand-rolled, all fields numeric).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"rate\":{},\"recovery_budget\":{},\"checkpoint_interval\":{},\
             \"detect_timeout_s\":{},\"respawn_s\":{}}}",
            self.seed,
            crate::stats::json_f64(self.rate),
            self.recovery_budget,
            self.checkpoint_interval,
            crate::stats::json_f64(self.detect_timeout_s),
            crate::stats::json_f64(self.respawn_s),
        )
    }
}

impl Default for CrashPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// One rank's crash lottery: a monotone stream of Bernoulli draws, one per
/// recovery probe. Pure function of `(plan.seed, rank, draw index)`; the
/// draw index only ever advances (restores do not rewind it), so a crash
/// window fires exactly once and the schedule is identical under any
/// scheduler mode or thread count.
#[derive(Clone, Debug)]
pub struct CrashLottery {
    rng: LinkRng,
    rate: f64,
    forced: [(u32, u32); MAX_FORCED_CRASHES],
    rank: u32,
    draws: u64,
}

impl CrashLottery {
    /// Build rank `rank`'s lottery under `plan`.
    pub fn for_rank(plan: &CrashPlan, rank: usize) -> Self {
        CrashLottery {
            rng: LinkRng::for_link(plan.seed ^ 0x4352_5348, rank, rank), // "CRSH"
            rate: plan.rate,
            forced: plan.forced,
            rank: rank as u32,
            draws: 0,
        }
    }

    /// Draw the next probe: does this rank die here? Always advances the
    /// stream, so forced windows never shift the random schedule.
    pub fn crash_now(&mut self) -> bool {
        let window = self.draws;
        self.draws += 1;
        let random = self.rng.coin(self.rate);
        let forced = self
            .forced
            .iter()
            .any(|&(r, w)| r == self.rank && w as u64 == window);
        random || forced
    }

    /// Probes drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

/// The per-link fault lottery: one SplitMix64 stream per ordered `(src,
/// dst)` pair, owned and advanced exclusively by the sending rank — the
/// property that makes fault schedules independent of execution
/// interleaving.
#[derive(Clone, Debug)]
pub struct LinkRng {
    state: u64,
}

impl LinkRng {
    /// Derive the stream for link `src → dst` from the plan seed.
    pub fn for_link(seed: u64, src: usize, dst: usize) -> Self {
        let key = splitmix64(seed ^ (src as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        LinkRng {
            state: splitmix64(key ^ (dst as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)),
        }
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw. Always advances the stream, even for `p == 0`, so a
    /// plan with one rate zeroed still replays the same schedule for the
    /// other classes.
    pub fn coin(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// The fate the lottery assigns one transmission attempt of one frame.
/// Exactly six draws per attempt (five coins + the corruption offset seed),
/// so the stream position is a pure function of the attempt count.
#[derive(Clone, Copy, Debug)]
pub struct FrameFate {
    /// Data frame lost in flight.
    pub drop: bool,
    /// Data frame delivered with a corrupted bit burst.
    pub corrupt: bool,
    /// A second copy of the data frame is delivered.
    pub duplicate: bool,
    /// Data frame delayed behind its successors.
    pub reorder: bool,
    /// The acknowledgement for a delivered frame is lost on the way back.
    pub ack_drop: bool,
    /// Seed for the corruption burst position/width (used only when
    /// `corrupt` is set, but always drawn).
    pub corrupt_seed: u64,
}

impl FrameFate {
    /// Draw the fate of one attempt from `rng` under `plan`.
    pub fn draw(rng: &mut LinkRng, plan: &FaultPlan) -> Self {
        FrameFate {
            drop: rng.coin(plan.drop),
            corrupt: rng.coin(plan.corrupt),
            duplicate: rng.coin(plan.duplicate),
            reorder: rng.coin(plan.reorder),
            ack_drop: rng.coin(plan.drop),
            corrupt_seed: rng.next_u64(),
        }
    }
}

/// One rank's seeded stall schedule: virtual-time freezes triggered when
/// the rank's sent-message count crosses seeded thresholds. Pure function
/// of `(plan, rank)`.
#[derive(Clone, Debug, Default)]
pub struct StallSchedule {
    /// `(trigger_msg_count, duration_s)`, sorted by trigger count.
    windows: Vec<(u64, f64)>,
    /// Index of the next untriggered window.
    next: usize,
    /// Messages sent so far by this rank.
    sent: u64,
}

impl StallSchedule {
    /// Build rank `rank`'s schedule under `plan`.
    pub fn for_rank(plan: &FaultPlan, rank: usize) -> Self {
        let mut windows = Vec::with_capacity(plan.stalls_per_rank as usize);
        if plan.stalls_per_rank > 0 && plan.stall_s > 0.0 {
            let mut rng = LinkRng::for_link(plan.seed ^ 0x5741_4C4C, rank, rank); // "WALL"
            for i in 0..plan.stalls_per_rank as u64 {
                let trigger = i * plan.stall_every + rng.below(plan.stall_every.max(1));
                let jitter = 0.5 + rng.unit(); // 0.5×–1.5×
                windows.push((trigger, plan.stall_s * jitter));
            }
            windows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        }
        StallSchedule {
            windows,
            next: 0,
            sent: 0,
        }
    }

    /// Account one sent message; returns the total stall seconds (and
    /// window count) newly triggered by this send, if any.
    pub fn on_send(&mut self) -> Option<(f64, u64)> {
        self.sent += 1;
        let mut dt = 0.0;
        let mut hit = 0u64;
        while self.next < self.windows.len() && self.windows[self.next].0 < self.sent {
            dt += self.windows[self.next].1;
            hit += 1;
            self.next += 1;
        }
        (hit > 0).then_some((dt, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::none().validate().is_ok());
        assert!(FaultPlan::lossy(1, 0.05, 0.02, 0.01).is_active());
    }

    #[test]
    fn stall_only_plan_is_active() {
        assert!(FaultPlan::none().with_stalls(2, 1e-4, 64).is_active());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(FaultPlan::none().with_drop(1.5).validate().is_err());
        assert!(FaultPlan::none().with_corrupt(-0.1).validate().is_err());
        assert!(FaultPlan::none().with_drop(f64::NAN).validate().is_err());
    }

    #[test]
    fn link_streams_are_independent_and_replayable() {
        let a1: Vec<u64> = {
            let mut r = LinkRng::for_link(7, 0, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = LinkRng::for_link(7, 0, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = LinkRng::for_link(7, 1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2, "same link must replay");
        assert_ne!(a1, b, "reverse link must draw a different stream");
    }

    #[test]
    fn fate_draw_count_is_fixed() {
        // the stream advances by the same amount whatever the rates, so
        // zeroing one class never perturbs another class's schedule
        let plan_a = FaultPlan::lossy(3, 0.5, 0.0, 0.0);
        let plan_b = FaultPlan::lossy(3, 0.5, 0.9, 0.9);
        let mut ra = LinkRng::for_link(3, 0, 1);
        let mut rb = LinkRng::for_link(3, 0, 1);
        for _ in 0..32 {
            let fa = FrameFate::draw(&mut ra, &plan_a);
            let fb = FrameFate::draw(&mut rb, &plan_b);
            assert_eq!(fa.drop, fb.drop, "drop schedule must not shift");
            assert_eq!(fa.ack_drop, fb.ack_drop);
        }
    }

    #[test]
    fn crash_plan_inactive_by_default() {
        assert!(!CrashPlan::none().is_active());
        assert!(CrashPlan::none().validate().is_ok());
        assert!(CrashPlan::random(1, 0.1).is_active());
        assert!(CrashPlan::none().with_forced(2, 5).is_active());
    }

    #[test]
    fn crash_plan_validation() {
        assert!(CrashPlan::random(1, 1.5).validate().is_err());
        assert!(CrashPlan::random(1, f64::NAN).validate().is_err());
        let mut p = CrashPlan::none();
        p.checkpoint_interval = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn crash_lottery_replays_and_is_per_rank() {
        let plan = CrashPlan::random(42, 0.25);
        let draw = |rank: usize| -> Vec<bool> {
            let mut l = CrashLottery::for_rank(&plan, rank);
            (0..64).map(|_| l.crash_now()).collect()
        };
        assert_eq!(draw(0), draw(0), "same rank must replay");
        assert_ne!(draw(0), draw(1), "ranks draw independent streams");
    }

    #[test]
    fn forced_windows_fire_exactly_once_without_shifting_randoms() {
        let base = CrashPlan::random(7, 0.2);
        let forced = base.with_forced(3, 10);
        let random_only: Vec<bool> = {
            let mut l = CrashLottery::for_rank(&base, 3);
            (0..32).map(|_| l.crash_now()).collect()
        };
        let with_forced: Vec<bool> = {
            let mut l = CrashLottery::for_rank(&forced, 3);
            (0..32).map(|_| l.crash_now()).collect()
        };
        for (i, (a, b)) in random_only.iter().zip(&with_forced).enumerate() {
            if i == 10 {
                assert!(*b, "forced window must fire");
            } else {
                assert_eq!(a, b, "window {i}: forcing must not shift the stream");
            }
        }
        // another rank is untouched
        let mut l = CrashLottery::for_rank(&forced, 2);
        let mut m = CrashLottery::for_rank(&base, 2);
        for _ in 0..32 {
            assert_eq!(l.crash_now(), m.crash_now());
        }
    }

    #[test]
    fn stall_schedule_triggers_once_each() {
        let plan = FaultPlan::none().with_stalls(3, 1e-3, 10);
        let mut s = StallSchedule::for_rank(&plan, 2);
        let mut total = 0.0;
        let mut hits = 0;
        for _ in 0..100 {
            if let Some((dt, h)) = s.on_send() {
                total += dt;
                hits += h;
            }
        }
        assert_eq!(hits, 3, "every window triggers exactly once");
        assert!((3.0 * 0.5e-3..=3.0 * 1.5e-3).contains(&total));
        // replay
        let mut s2 = StallSchedule::for_rank(&plan, 2);
        let mut total2 = 0.0;
        for _ in 0..100 {
            if let Some((dt, _)) = s2.on_send() {
                total2 += dt;
            }
        }
        assert_eq!(total.to_bits(), total2.to_bits());
    }
}
