//! F1 — Weak-scaling curve (the series behind T2's table).
//!
//! Fixed per-rank problem (2^`G500_SCALE_PER_RANK` vertices/rank), rank
//! count doubling, three interconnect topologies overlaid so the curve also
//! shows how much shape the network model contributes.
//!
//! Overrides: `G500_SCALE_PER_RANK` (default 14), `G500_MAX_RANKS` (32),
//! `G500_ROOTS` (4).

use g500_bench::{banner, gteps, param, Table};
use graph500::simnet::Topology;
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn main() {
    let spr = param("G500_SCALE_PER_RANK", 14) as u32;
    let max_ranks = param("G500_MAX_RANKS", 32) as usize;
    let roots = param("G500_ROOTS", 4) as usize;
    banner(
        "F1",
        "weak scaling across topologies",
        &[
            ("vertices/rank", format!("2^{spr}")),
            ("max ranks", max_ranks.to_string()),
        ],
    );

    type TopoFor = fn(usize) -> Topology;
    let topos: Vec<(&str, TopoFor)> = vec![
        ("crossbar", |_| Topology::Crossbar),
        ("fat-tree(r4)", |_| Topology::FatTree { radix: 4 }),
        ("torus2d", |p| {
            let w = (p as f64).sqrt().ceil() as u32;
            Topology::Torus2D {
                w: w.max(1),
                h: (p as u32).div_ceil(w.max(1)),
            }
        }),
    ];

    let t = Table::new(&[
        "topology",
        "ranks",
        "scale",
        "hmean_GTEPS",
        "GTEPS/rank",
        "eff%",
    ]);
    for (name, mk) in topos {
        let mut base = 0.0f64;
        let mut ranks = 1usize;
        while ranks <= max_ranks {
            let scale = spr + ranks.trailing_zeros();
            let mut cfg = BenchmarkConfig::graph500(scale, ranks);
            cfg.num_roots = roots;
            cfg.machine = cfg.machine.topology(mk(ranks));
            cfg.validate = false; // the exactness suite covers correctness
            let rep = run_sssp_benchmark(&cfg);
            let g = rep.teps.harmonic_mean;
            let per = g / ranks as f64;
            if ranks == 1 {
                base = per;
            }
            t.row(&[
                name.to_string(),
                ranks.to_string(),
                scale.to_string(),
                gteps(g),
                gteps(per),
                format!("{:.1}", 100.0 * per / base),
            ]);
            ranks *= 2;
        }
    }
    println!("\nexpected shape: efficiency declines gently with log(ranks); torus decays fastest (hop counts grow), crossbar slowest");
}
