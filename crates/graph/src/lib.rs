//! # g500-graph — graph data structures for the Graph500 SSSP reproduction
//!
//! This crate is the foundation of the workspace: it defines the vertex/edge
//! primitive types, weighted edge lists, compressed sparse row (CSR)
//! adjacency, bitmaps, adjacency compression codecs, vertex permutations and
//! degree statistics. Every other crate (generator, partitioner, SSSP
//! kernels, validator) builds on these types.
//!
//! Design notes:
//!
//! * Vertex ids are global 64-bit integers ([`VertexId`]) because the paper's
//!   graphs reach 2^42+ vertices; local (per-rank) indices are `usize`/`u32`.
//! * Edge weights are `f32` in `[0, 1)` as the Graph500 SSSP specification
//!   prescribes; distances are `f32` as well, matching the reference code.
//! * Hot-path construction (CSR build, transpose) is parallelised with rayon
//!   and written allocation-consciously per the Rust Performance Book:
//!   counting sort with pre-sized buffers, no per-edge allocation.
#![warn(missing_docs)]

pub mod bitmap;
pub mod cc;
pub mod compress;
pub mod csr;
pub mod degree;
pub mod edgelist;
pub mod hash;
pub mod perm;
pub mod types;

pub use bitmap::Bitmap;
pub use cc::{component_stats, ComponentStats, UnionFind};
pub use compress::{decode_adjacency, encode_adjacency, CompressedCsr};
pub use csr::{Csr, Directedness};
pub use degree::DegreeStats;
pub use edgelist::EdgeList;
pub use perm::{BitMixPermutation, Permutation};
pub use types::{ShortestPaths, VertexId, WEdge, Weight, INF_WEIGHT, NO_PARENT};
