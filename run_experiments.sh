#!/usr/bin/env bash
# Run every experiment harness and archive outputs under results/.
# Parameters here are the defaults recorded in EXPERIMENTS.md; override
# with G500_* environment variables for bigger sweeps.
set -u
cd "$(dirname "$0")"
mkdir -p results
BIN=target/release

run() {
  local name="$1"
  echo "=== running $name ==="
  local start=$SECONDS
  if "$BIN/$name" >"results/$name.txt" 2>&1; then
    echo "  ok in $((SECONDS - start))s"
  else
    echo "FAILED: $name (see results/$name.txt)"
  fi
}

# Recorded-run parameters: chosen so the full suite completes in tens of
# minutes on one host core; every binary accepts larger G500_* overrides.
run t1_graph_stats
G500_SCALE_PER_RANK=14 G500_MAX_RANKS=32 G500_ROOTS=4 run t2_headline
run t3_ablation
G500_SCALE_PER_RANK=13 G500_MAX_RANKS=32 G500_ROOTS=3 run f1_weak_scaling
G500_SCALE=15 G500_MAX_RANKS=32 G500_ROOTS=3 run f2_strong_scaling
run f3_delta_sweep
run f4_breakdown
G500_MAX_SCALE=16 G500_ROOTS=2 run f5_algo_compare
run f6_comm_volume
run f7_degree_dist
run f8_direction
run f9_dist_compare
run f10_bfs_vs_sssp
run f11_batching
run f12_partition_balance
run f13_2d_fanout
G500_MAX_SCALE=13 run f14_dist2d
run f15_weight_dist
echo "all experiments done"
