//! Failure injection: the runtime must fail *stop*, not hang or lie.
//!
//! A 40-million-core job dies fast or corrupts results slowly; the
//! simulated machine mirrors the fail-stop discipline (a rank fault aborts
//! the job, waiters included) and the validator must catch every class of
//! corrupted kernel output.

use graph500::gen::simple;
use graph500::graph::{EdgeList, INF_WEIGHT, NO_PARENT};
use graph500::simnet::{Machine, MachineConfig};
use graph500::validate::{validate_sssp, SsspResult};

// ---------- runtime fail-stop ----------

#[test]
#[should_panic(expected = "panicked")]
fn fault_on_one_rank_aborts_waiters() {
    Machine::new(MachineConfig::with_ranks(4)).run(|ctx| {
        if ctx.rank() == 2 {
            panic!("injected fault on rank 2");
        }
        // everyone else waits on a collective rank 2 will never join
        ctx.barrier();
    });
}

#[test]
#[should_panic(expected = "panicked")]
fn fault_during_alltoall_aborts() {
    Machine::new(MachineConfig::with_ranks(3)).run(|ctx| {
        if ctx.rank() == 0 {
            panic!("injected fault before exchange");
        }
        let out: Vec<Vec<u64>> = (0..ctx.size()).map(|d| vec![d as u64]).collect();
        ctx.alltoallv(out);
    });
}

#[test]
fn healthy_job_after_failed_job() {
    // a failed Machine::run must not poison the next one
    let bad = std::panic::catch_unwind(|| {
        Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            ctx.barrier();
        });
    });
    assert!(bad.is_err());
    let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| ctx.allreduce_sum(1));
    assert_eq!(rep.results, vec![2, 2]);
}

#[test]
#[should_panic(expected = "does not decode")]
fn type_confusion_is_detected() {
    // sender ships u32s, receiver expects (u64, f32) records: the payload
    // length cannot divide evenly → decode failure, loudly
    Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, &[7u32]);
        } else {
            let _: Vec<(u64, f32)> = ctx.recv(0, 5);
        }
    });
}

// ---------- deterministic-mode fail-stop ----------

#[test]
#[should_panic(expected = "panicked")]
fn det_fault_on_one_rank_aborts_waiters() {
    // the serialized scheduler must hand the token past the dead rank and
    // abort the waiters instead of spinning on them forever
    Machine::new(MachineConfig::with_ranks(4).deterministic(0)).run(|ctx| {
        if ctx.rank() == 2 {
            panic!("injected fault on rank 2");
        }
        ctx.barrier();
    });
}

#[test]
#[should_panic(expected = "panicked")]
fn det_fault_under_fuzzed_schedule_aborts() {
    // same, under a non-canonical (preempting) schedule
    Machine::new(MachineConfig::with_ranks(4).deterministic(0xBAD)).run(|ctx| {
        if ctx.rank() == 1 {
            panic!("injected fault before exchange");
        }
        let out: Vec<Vec<u64>> = (0..ctx.size()).map(|d| vec![d as u64]).collect();
        ctx.alltoallv(out);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn det_mismatched_recv_is_reported_as_deadlock() {
    // rank 0 waits for a message rank 1 never sends: with every rank
    // blocked or done, the scheduler must name the deadlock rather than
    // hang (the threads-mode watchdog would abort too, but without the
    // blocked-on diagnosis)
    Machine::new(MachineConfig::with_ranks(2).deterministic(0)).run(|ctx| {
        if ctx.rank() == 0 {
            let _: Vec<u64> = ctx.recv(1, 9);
        }
    });
}

#[test]
#[should_panic(expected = "orphan")]
fn det_misrouted_message_is_caught() {
    // rank 0 sends rank 1 a message nobody receives: debug-mode orphan
    // detection fails the job at exit instead of dropping it silently
    Machine::new(MachineConfig::with_ranks(2).deterministic(0)).run(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 3, &[1u64]);
        }
    });
}

#[test]
fn det_healthy_job_after_failed_job() {
    let bad = std::panic::catch_unwind(|| {
        Machine::new(MachineConfig::with_ranks(2).deterministic(7)).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            ctx.barrier();
        });
    });
    assert!(bad.is_err());
    let rep =
        Machine::new(MachineConfig::with_ranks(2).deterministic(7)).run(|ctx| ctx.allreduce_sum(1));
    assert_eq!(rep.results, vec![2, 2]);
}

// ---------- validator catches corrupted kernel output ----------

fn good_result() -> (EdgeList, SsspResult) {
    let el = simple::path(5, 0.5);
    (
        el,
        SsspResult {
            root: 0,
            dist: vec![0.0, 0.5, 1.0, 1.5, 2.0],
            parent: vec![0, 0, 1, 2, 3],
        },
    )
}

#[test]
fn pristine_result_passes() {
    let (el, res) = good_result();
    assert!(validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_too_short_distance() {
    let (el, mut res) = good_result();
    res.dist[3] = 0.6; // shorter than any real path
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_too_long_distance() {
    let (el, mut res) = good_result();
    res.dist[3] = 2.5;
    res.dist[4] = 3.0;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_false_unreachability() {
    let (el, mut res) = good_result();
    res.dist[4] = INF_WEIGHT;
    res.parent[4] = NO_PARENT;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_parent_loop() {
    let (el, mut res) = good_result();
    res.parent[3] = 4;
    res.parent[4] = 3;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_orphan_parent() {
    let (el, mut res) = good_result();
    res.parent[2] = NO_PARENT; // reached but parentless
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_nonexistent_tree_edge() {
    let (el, mut res) = good_result();
    res.parent[4] = 0; // no edge 0-4 in a path
    res.dist[4] = 0.5;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn every_single_bit_flip_class_is_caught() {
    // systematic: corrupt each vertex's distance upward and downward and
    // require rejection (excluding no-ops)
    let (el, res) = good_result();
    for v in 1..5 {
        for delta in [-0.3f32, 0.3] {
            let mut bad = res.clone();
            bad.dist[v] += delta;
            let rep = validate_sssp(5, &el, &bad);
            assert!(!rep.ok, "undetected corruption at {v} delta {delta}");
        }
    }
}

// ---------- lossy network masked by the reliable transport ----------
//
// The determinism-under-faults contract: with the same generator and
// scheduler seeds, ANY fault seed whose faults stay within the retry
// budget must yield byte-identical distances, parents, kernel counters,
// and validation output to the fault-free run — only virtual time and the
// transport counters in NetStats may move.

use graph500::gen::KroneckerParams;
use graph500::simnet::SchedMode;
use graph500::sssp::Grid2DSssp;
use graph500::{run_sssp_benchmark, BenchmarkConfig, FaultPlan};

/// The ISSUE's lossy CI profile.
fn lossy_profile(seed: u64) -> FaultPlan {
    FaultPlan::lossy(seed, 0.05, 0.02, 0.01)
}

fn run_1d(
    scale: u32,
    ranks: usize,
    sched: Option<u64>,
    fault: FaultPlan,
) -> graph500::BenchmarkReport {
    let mut cfg = BenchmarkConfig::quick(scale, ranks).faults(fault);
    if let Some(seed) = sched {
        cfg = cfg.deterministic(seed);
    }
    cfg.keep_paths = true;
    run_sssp_benchmark(&cfg)
}

fn assert_same_outputs(clean: &graph500::BenchmarkReport, lossy: &graph500::BenchmarkReport) {
    assert!(clean.all_validated() && lossy.all_validated());
    assert_eq!(clean.runs.len(), lossy.runs.len());
    for (a, b) in clean.runs.iter().zip(&lossy.runs) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.validated, b.validated);
        assert_eq!(a.traversed_edges, b.traversed_edges);
        // Virtual time legitimately moves under faults (retransmissions
        // cost RTOs); every discrete kernel counter must not.
        let strip_time = |s: &graph500::sssp::SsspRunStats| {
            let mut s = s.clone();
            s.sim_time_s = 0.0;
            s.compute_s = 0.0;
            s.comm_s = 0.0;
            s.phases.clear();
            s
        };
        assert_eq!(
            strip_time(&a.stats),
            strip_time(&b.stats),
            "kernel counters moved under faults"
        );
        let (pa, pb) = (
            a.paths.as_ref().expect("kept"),
            b.paths.as_ref().expect("kept"),
        );
        for v in 0..pa.dist.len() {
            assert_eq!(
                pa.dist[v].to_bits(),
                pb.dist[v].to_bits(),
                "root {}: distance moved at vertex {v}",
                a.root
            );
        }
        assert_eq!(pa.parent, pb.parent, "root {}: parents moved", a.root);
    }
}

/// Scale-10 1D acceptance: lossy run is byte-identical to fault-free,
/// with nonzero retransmit counters — under both schedulers.
#[test]
fn scale10_1d_lossy_matches_fault_free_both_schedulers() {
    for sched in [None, Some(0)] {
        let clean = run_1d(10, 8, sched, FaultPlan::none());
        let lossy = run_1d(10, 8, sched, lossy_profile(0xFA17));
        assert_same_outputs(&clean, &lossy);
        assert!(
            lossy.net.retransmits > 0 && lossy.net.corrupt_frames > 0,
            "lossy profile did not exercise the transport ({sched:?}): {:?}",
            lossy.net
        );
        assert_eq!(clean.net.retransmits, 0, "clean run saw retransmits");
    }
}

/// Scale-10 2D acceptance: the grid kernel (not driven by the benchmark
/// driver) is also byte-identical under faults, both schedulers.
#[test]
fn scale10_2d_lossy_matches_fault_free_both_schedulers() {
    let gen = graph500::gen::KroneckerGenerator::new(KroneckerParams::graph500(10, 20220814));
    let el = gen.generate_all();
    let n = 1u64 << 10;
    let p = 4usize;
    let root = {
        let mut has_edge = vec![false; n as usize];
        for e in el.iter() {
            has_edge[e.u as usize] = true;
            has_edge[e.v as usize] = true;
        }
        (0..n).find(|&v| has_edge[v as usize]).expect("nonempty")
    };
    let run = |sched: SchedMode, fault: FaultPlan| {
        let cfg = MachineConfig::with_ranks(p).sched(sched).faults(fault);
        let report = Machine::new(cfg).run(|ctx| {
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine = (lo..hi).map(|i| el.get(i));
            let mut g = Grid2DSssp::build(ctx, n, mine, 0.25);
            let stats = g.run(ctx, root);
            (g.gather(ctx), stats.supersteps)
        });
        let net = report.total_stats();
        let (sp, steps) = report.results.into_iter().next().expect("rank 0");
        (sp, steps, net)
    };
    for sched in [SchedMode::Threads, SchedMode::Deterministic { seed: 0 }] {
        let (sp_c, steps_c, net_c) = run(sched, FaultPlan::none());
        let (sp_f, steps_f, net_f) = run(sched, lossy_profile(0x2D));
        assert_eq!(steps_c, steps_f, "superstep count moved under faults");
        for v in 0..n as usize {
            assert_eq!(
                sp_c.dist[v].to_bits(),
                sp_f.dist[v].to_bits(),
                "distance moved at {v}"
            );
        }
        assert_eq!(sp_c.parent, sp_f.parent, "parents moved under faults");
        assert!(net_f.retransmits > 0, "{net_f:?}");
        assert_eq!(net_c.retransmits, 0);
        // validate the lossy result against the input edge list
        let res = SsspResult {
            root,
            dist: sp_f.dist.clone(),
            parent: sp_f.parent.clone(),
        };
        assert!(validate_sssp(n, &el, &res).ok);
    }
}

/// Fuzzed schedule × fault seed matrix: every combination must reproduce
/// the canonical fault-free distances.
#[test]
fn fuzzed_schedule_times_fault_seed_matrix() {
    let canonical = run_1d(8, 4, Some(0), FaultPlan::none());
    for sched_seed in [0u64, 1, 0xFEED] {
        // Faults must be invisible relative to the *same* schedule; the
        // schedule fuzz itself may move internal counters, but never the
        // computed distances.
        let clean = run_1d(8, 4, Some(sched_seed), FaultPlan::none());
        for fault_seed in [1u64, 0xABCD] {
            let lossy = run_1d(8, 4, Some(sched_seed), lossy_profile(fault_seed));
            assert_same_outputs(&clean, &lossy);
            assert!(
                lossy.net.saw_faults(),
                "sched {sched_seed:#x} fault {fault_seed:#x} drew no faults"
            );
            for (a, b) in canonical.runs.iter().zip(&lossy.runs) {
                let (pa, pb) = (a.paths.as_ref().unwrap(), b.paths.as_ref().unwrap());
                for v in 0..pa.dist.len() {
                    assert_eq!(
                        pa.dist[v].to_bits(),
                        pb.dist[v].to_bits(),
                        "sched {sched_seed:#x} fault {fault_seed:#x}: distance diverged at {v}"
                    );
                }
            }
        }
    }
}

/// Injected rank stall windows cost virtual time but change nothing else.
#[test]
fn rank_stalls_change_time_not_results() {
    let clean = run_1d(8, 4, Some(0), FaultPlan::none());
    let stalled = run_1d(
        8,
        4,
        Some(0),
        FaultPlan::none().with_seed(5).with_stalls(4, 1e-4, 64),
    );
    assert_same_outputs(&clean, &stalled);
    assert!(stalled.net.stall_events > 0, "{:?}", stalled.net);
    assert!(stalled.net.stall_s > 0.0);
    assert!(stalled.wall_time_s >= 0.0);
}

/// Same fault seed ⇒ byte-identical NetStats (including every transport
/// counter), independent of scheduler mode.
#[test]
fn fault_counters_are_scheduler_invariant() {
    let threads = run_1d(8, 4, None, lossy_profile(0x77));
    let det = run_1d(8, 4, Some(0), lossy_profile(0x77));
    assert_eq!(threads.per_rank_net, det.per_rank_net);
    assert_same_outputs(&threads, &det);
}

// ---------- tracing × faults: observation without perturbation ----------

use graph500::simnet::{TraceCode, TraceKind};

/// The trace's Retransmit/Timeout events are recorded 1:1 with the
/// NetStats counter bumps, per rank, at the same fault seed.
#[test]
fn trace_fault_events_match_netstats_counters() {
    for fault_seed in [0xFA17u64, 0xABCD] {
        let mut cfg = BenchmarkConfig::quick(9, 4)
            .deterministic(0)
            .faults(lossy_profile(fault_seed))
            .traced(true);
        cfg.validate = false;
        let rep = run_sssp_benchmark(&cfg);
        let trace = rep.trace.as_ref().expect("run was traced");
        assert!(rep.net.retransmits > 0, "profile drew no faults");
        let mut retrans = vec![0u64; rep.ranks];
        let mut timeouts = vec![0u64; rep.ranks];
        for (rank, ev) in &trace.events {
            if ev.kind == TraceKind::Count {
                match ev.code {
                    TraceCode::Retransmit => retrans[*rank as usize] += 1,
                    TraceCode::Timeout => timeouts[*rank as usize] += 1,
                    _ => {}
                }
            }
        }
        for (r, net) in rep.per_rank_net.iter().enumerate() {
            assert_eq!(
                retrans[r], net.retransmits,
                "rank {r}: trace retransmit events != NetStats ({fault_seed:#x})"
            );
            assert_eq!(
                timeouts[r], net.timeouts,
                "rank {r}: trace timeout events != NetStats ({fault_seed:#x})"
            );
        }
    }
}

/// Tracing observes the run but never perturbs it: distances, kernel
/// counters, and every NetStats field (virtual times included) are
/// byte-identical with tracing on or off — with and without faults.
#[test]
fn tracing_does_not_perturb_runs() {
    for fault in [FaultPlan::none(), lossy_profile(0x77)] {
        let base = BenchmarkConfig::quick(9, 4).deterministic(0).faults(fault);
        let mut off_cfg = base.clone();
        off_cfg.keep_paths = true;
        let mut on_cfg = base.traced(true);
        on_cfg.keep_paths = true;
        let off = run_sssp_benchmark(&off_cfg);
        let on = run_sssp_benchmark(&on_cfg);
        assert_same_outputs(&off, &on);
        assert_eq!(
            off.per_rank_net, on.per_rank_net,
            "tracing moved NetStats (virtual time or counters)"
        );
        for (a, b) in off.runs.iter().zip(&on.runs) {
            assert_eq!(
                a.sim_time_s.to_bits(),
                b.sim_time_s.to_bits(),
                "tracing moved the virtual clock for root {}",
                a.root
            );
        }
        assert!(off.trace.is_none());
        assert!(on.trace.is_some());
    }
}

// ---------- retry-budget exhaustion: diagnosable fail-stop ----------

#[test]
#[should_panic(expected = "retry budget exhausted on link")]
fn retry_budget_exhaustion_names_link_threads() {
    let plan = FaultPlan::lossy(1, 1.0, 0.0, 0.0).with_retry_budget(2);
    Machine::new(MachineConfig::with_ranks(2).faults(plan)).run(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, &[1u64]);
        } else {
            let _: Vec<u64> = ctx.recv(0, 5);
        }
    });
}

#[test]
#[should_panic(expected = "retry budget exhausted on link")]
fn retry_budget_exhaustion_names_link_deterministic() {
    let plan = FaultPlan::lossy(1, 1.0, 0.0, 0.0).with_retry_budget(2);
    Machine::new(MachineConfig::with_ranks(2).deterministic(0).faults(plan)).run(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, &[1u64]);
        } else {
            let _: Vec<u64> = ctx.recv(0, 5);
        }
    });
}

// ---------- process crashes compose with the lossy network ----------

use graph500::CrashPlan;

/// Link faults and rank crashes drawn together: the reliable transport
/// masks the former, checkpoint/rollback masks the latter, and the results
/// are still byte-identical to the fully fault-free run — under both
/// schedulers.
#[test]
fn crashes_compose_with_lossy_network() {
    let crash = CrashPlan::random(2, 0.004)
        .with_checkpoint_interval(3)
        .with_recovery_budget(64);
    for sched in [None, Some(0)] {
        let clean = run_1d(10, 8, sched, FaultPlan::none());
        let mut cfg = BenchmarkConfig::quick(10, 8)
            .faults(lossy_profile(0xFA17))
            .crashes(crash);
        if let Some(seed) = sched {
            cfg = cfg.deterministic(seed);
        }
        cfg.keep_paths = true;
        let faulty = run_sssp_benchmark(&cfg);
        assert_same_outputs(&clean, &faulty);
        assert!(
            faulty.net.retransmits > 0,
            "lossy profile never fired: {:?}",
            faulty.net
        );
        assert!(
            faulty.net.crashes > 0 && faulty.net.restores > 0,
            "crash schedule never fired ({sched:?}): {:?}",
            faulty.net
        );
    }
}

/// Same crash seed ⇒ byte-identical crash/recovery counters in every
/// rank's NetStats, independent of scheduler mode (the crash lottery is
/// keyed to probe indices, not to execution interleaving).
#[test]
fn crash_counters_are_scheduler_invariant() {
    let crash = CrashPlan::random(2, 0.004)
        .with_checkpoint_interval(3)
        .with_recovery_budget(64);
    let run = |sched: Option<u64>| {
        let mut cfg = BenchmarkConfig::quick(9, 4).crashes(crash);
        if let Some(seed) = sched {
            cfg = cfg.deterministic(seed);
        }
        cfg.keep_paths = true;
        run_sssp_benchmark(&cfg)
    };
    let threads = run(None);
    let det = run(Some(0));
    assert_eq!(threads.per_rank_net, det.per_rank_net);
    assert_same_outputs(&threads, &det);
    assert!(threads.net.checkpoints > 0);
}
