//! Weighted edge lists in struct-of-arrays layout.
//!
//! The Graph500 pipeline hands the generator's output around as a flat edge
//! list before CSR conversion; SoA keeps it cache-friendly and lets the
//! partitioner ship `(src, dst, w)` columns independently.

use crate::types::{VertexId, WEdge, Weight};
use rayon::prelude::*;

/// A weighted edge list in struct-of-arrays layout.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    src: Vec<VertexId>,
    dst: Vec<VertexId>,
    w: Vec<Weight>,
}

impl EdgeList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty list with reserved capacity for `cap` edges.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            src: Vec::with_capacity(cap),
            dst: Vec::with_capacity(cap),
            w: Vec::with_capacity(cap),
        }
    }

    /// Build from an iterator of edges.
    pub fn from_edges<I: IntoIterator<Item = WEdge>>(it: I) -> Self {
        let mut el = Self::new();
        for e in it {
            el.push(e);
        }
        el
    }

    /// Append one edge.
    #[inline]
    pub fn push(&mut self, e: WEdge) {
        self.src.push(e.u);
        self.dst.push(e.v);
        self.w.push(e.w);
    }

    /// Append the contents of another list.
    pub fn extend_from(&mut self, other: &EdgeList) {
        self.src.extend_from_slice(&other.src);
        self.dst.extend_from_slice(&other.dst);
        self.w.extend_from_slice(&other.w);
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True if no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Edge at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> WEdge {
        WEdge {
            u: self.src[i],
            v: self.dst[i],
            w: self.w[i],
        }
    }

    /// Source column.
    #[inline]
    pub fn srcs(&self) -> &[VertexId] {
        &self.src
    }

    /// Destination column.
    #[inline]
    pub fn dsts(&self) -> &[VertexId] {
        &self.dst
    }

    /// Weight column.
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.w
    }

    /// Iterate over edges by value.
    pub fn iter(&self) -> impl Iterator<Item = WEdge> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Parallel iterator over edges by value.
    pub fn par_iter(&self) -> impl IndexedParallelIterator<Item = WEdge> + '_ {
        (0..self.len()).into_par_iter().map(move |i| self.get(i))
    }

    /// Largest endpoint id + 1, i.e. the implied vertex-set size (0 if empty).
    pub fn vertex_count(&self) -> u64 {
        let ms = self.src.par_iter().copied().max().unwrap_or(0);
        let md = self.dst.par_iter().copied().max().unwrap_or(0);
        if self.is_empty() {
            0
        } else {
            ms.max(md) + 1
        }
    }

    /// Remove self-loops in place, preserving order of the remaining edges.
    pub fn remove_self_loops(&mut self) {
        let mut k = 0;
        for i in 0..self.len() {
            if self.src[i] != self.dst[i] {
                self.src[k] = self.src[i];
                self.dst[k] = self.dst[i];
                self.w[k] = self.w[i];
                k += 1;
            }
        }
        self.src.truncate(k);
        self.dst.truncate(k);
        self.w.truncate(k);
    }

    /// Return a new list containing each edge in both directions.
    ///
    /// Graph500 graphs are undirected but the generator emits each edge once;
    /// SSSP kernels work on the symmetrised list.
    pub fn symmetrized(&self) -> EdgeList {
        let n = self.len();
        let mut out = EdgeList::with_capacity(2 * n);
        out.src.extend_from_slice(&self.src);
        out.dst.extend_from_slice(&self.dst);
        out.w.extend_from_slice(&self.w);
        out.src.extend_from_slice(&self.dst);
        out.dst.extend_from_slice(&self.src);
        out.w.extend_from_slice(&self.w);
        out
    }

    /// Sort by `(src, dst)` and drop exact duplicate `(src, dst)` pairs,
    /// keeping the *minimum* weight among duplicates (the convention of the
    /// Graph500 validator: a multigraph relaxes along its cheapest parallel
    /// edge).
    pub fn canonicalize(&mut self) {
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        idx.par_sort_unstable_by_key(|&i| (self.src[i as usize], self.dst[i as usize]));
        let mut src = Vec::with_capacity(self.len());
        let mut dst = Vec::with_capacity(self.len());
        let mut w = Vec::with_capacity(self.len());
        for &i in &idx {
            let i = i as usize;
            let (u, v, wi) = (self.src[i], self.dst[i], self.w[i]);
            if let (Some(&pu), Some(&pv)) = (src.last(), dst.last()) {
                if pu == u && pv == v {
                    let last = w.last_mut().expect("weights track endpoints");
                    if wi < *last {
                        *last = wi;
                    }
                    continue;
                }
            }
            src.push(u);
            dst.push(v);
            w.push(wi);
        }
        self.src = src;
        self.dst = dst;
        self.w = w;
    }

    /// Apply a relabeling `f` to both endpoints of every edge, in parallel.
    pub fn relabel(&mut self, f: impl Fn(VertexId) -> VertexId + Sync) {
        self.src.par_iter_mut().for_each(|u| *u = f(*u));
        self.dst.par_iter_mut().for_each(|v| *v = f(*v));
    }
}

impl FromIterator<WEdge> for EdgeList {
    fn from_iter<I: IntoIterator<Item = WEdge>>(it: I) -> Self {
        Self::from_edges(it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_edges([
            WEdge::new(0, 1, 0.5),
            WEdge::new(1, 2, 0.25),
            WEdge::new(2, 2, 0.1),
            WEdge::new(0, 1, 0.75),
        ])
    }

    #[test]
    fn push_get_roundtrip() {
        let el = sample();
        assert_eq!(el.len(), 4);
        assert_eq!(el.get(1), WEdge::new(1, 2, 0.25));
        assert_eq!(el.vertex_count(), 3);
    }

    #[test]
    fn self_loop_removal() {
        let mut el = sample();
        el.remove_self_loops();
        assert_eq!(el.len(), 3);
        assert!(el.iter().all(|e| !e.is_loop()));
    }

    #[test]
    fn symmetrization_doubles_and_mirrors() {
        let el = sample().symmetrized();
        assert_eq!(el.len(), 8);
        assert_eq!(el.get(4), WEdge::new(1, 0, 0.5));
    }

    #[test]
    fn canonicalize_dedups_keeping_min_weight() {
        let mut el = sample();
        el.canonicalize();
        assert_eq!(el.len(), 3);
        // duplicate (0,1) kept the lighter 0.5
        let e = el.iter().find(|e| e.u == 0 && e.v == 1).unwrap();
        assert_eq!(e.w, 0.5);
        // sorted order
        let pairs: Vec<_> = el.iter().map(|e| (e.u, e.v)).collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn relabel_applies_to_both_columns() {
        let mut el = sample();
        el.relabel(|v| v + 10);
        assert_eq!(el.get(0), WEdge::new(10, 11, 0.5));
        assert_eq!(el.get(2), WEdge::new(12, 12, 0.1));
    }

    #[test]
    fn empty_list_properties() {
        let el = EdgeList::new();
        assert!(el.is_empty());
        assert_eq!(el.vertex_count(), 0);
    }
}
